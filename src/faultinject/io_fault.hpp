#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/artifact_io.hpp"

namespace mnemo::faultinject {

/// Declarative chaos plan for the I/O boundary — the counterpart of
/// FaultPlan (which lives inside the emulated memory) for the parts of
/// the consultant that touch the real world: artifact-store writes and
/// campaign-cell wall-clock. Every decision is a pure function of
/// (seed, site identity), so a chaos campaign replays bit-identically
/// under any thread interleaving.
struct IoFaultPlan {
  std::uint64_t seed = 0x10fa;

  // --- filesystem write failures ----------------------------------------
  /// Per-write probability that the temp file cannot be opened at all
  /// (ENOSPC-style failure; the save is reported as a typed error and the
  /// store stays untouched).
  double write_fail_rate = 0.0;
  /// Per-write probability of a crash mid-write: a torn temp file is left
  /// behind and the rename never happens — the litter fsck must reap.
  double torn_write_rate = 0.0;
  /// Fraction of the payload that lands before a torn write "crashes".
  double torn_fraction = 0.5;

  // --- slow campaign cells ----------------------------------------------
  /// Per-cell probability of an injected wall-clock stall. Stalls delay
  /// the tool, never the simulated clock, so measured bytes are
  /// untouched — this is the knob deadline tests use to make a campaign
  /// reliably outlive a deadline.
  double slow_cell_rate = 0.0;
  /// Stall length per drawn cell, milliseconds.
  double slow_cell_ms = 0.0;

  /// True when no chaos class is enabled.
  [[nodiscard]] bool empty() const noexcept {
    return write_fail_rate <= 0.0 && torn_write_rate <= 0.0 &&
           (slow_cell_rate <= 0.0 || slow_cell_ms <= 0.0);
  }
};

/// Counters of the chaos events actually injected.
struct IoFaultStats {
  std::uint64_t writes_seen = 0;      ///< atomic writes the hook inspected
  std::uint64_t write_failures = 0;   ///< injected open failures
  std::uint64_t torn_writes = 0;      ///< injected mid-write crashes
  std::uint64_t delayed_cells = 0;    ///< campaign cells stalled
};

/// The deterministic I/O chaos source. Decisions hash (seed, path,
/// per-path write ordinal) for writes and (seed, cell index) for cells,
/// so what gets hit depends only on the plan and the site — never on
/// scheduling. One injector is installed process-wide at a time
/// (ScopedIoFaults); installation is a test/chaos-harness affair, the
/// production server never arms one.
class IoFaultInjector {
 public:
  explicit IoFaultInjector(IoFaultPlan plan);

  /// The write-fault decision for one atomic write of `path`.
  [[nodiscard]] util::WriteFault on_write(const std::string& path);

  /// Stall decision for campaign cell `cell` (pure; counts when it hits).
  /// Returns the stall in milliseconds (0 = no stall).
  [[nodiscard]] double cell_delay_ms(std::size_t cell);

  [[nodiscard]] const IoFaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] IoFaultStats stats() const;

 private:
  IoFaultPlan plan_;
  mutable std::mutex mu_;
  IoFaultStats stats_;
  std::unordered_map<std::string, std::uint64_t> write_ordinal_;
};

/// RAII installation of an injector as the process-wide chaos source:
/// hooks util::write_file_atomic and the campaign runner's per-cell seam.
/// Un-installs (and restores a clean world) on destruction. Chaos tests
/// only — nesting is a test bug and asserts.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(IoFaultPlan plan);
  ~ScopedIoFaults();

  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;

  [[nodiscard]] IoFaultInjector& injector() noexcept { return injector_; }

 private:
  IoFaultInjector injector_;
};

/// The campaign runner's chaos seam: stalls the calling worker for the
/// injected delay of `cell`, or returns immediately when no injector is
/// installed (the production case — one relaxed atomic load).
void chaos_cell_delay(std::size_t cell);

/// Band-granular chaos seam for the lane-fused campaign runner: a fused
/// band replays cells [first, first + count) in one pass, so the worker
/// stalls once for the *sum* of the member cells' injected delays. Each
/// member keeps its own per-cell stall draw — the delayed-cell count and
/// total injected stall are identical to per-cell replay of the same
/// campaign, whatever the lane width.
void chaos_band_delay(std::size_t first, std::size_t count);

}  // namespace mnemo::faultinject
