#include "faultinject/fault_injector.hpp"

namespace mnemo::faultinject {

namespace {

/// Map a 64-bit hash to a uniform double in [0, 1) the same way Rng does.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t stream)
    : plan_(plan),
      stream_(stream),
      poison_salt_(util::mix64(plan.seed ^ util::mix64(stream ^
                                                       0x90150ed11e5ULL))),
      rng_(util::mix64(plan.seed) ^ util::mix64(stream * 0x9e3779b97f4a7c15ULL)) {
  plan_.check();
}

bool FaultInjector::poisoned(std::uint64_t object_id) const noexcept {
  if (plan_.poison_rate <= 0.0) return false;
  return to_unit(util::mix64(object_id ^ poison_salt_)) < plan_.poison_rate;
}

FaultInjector::ReadOutcome FaultInjector::on_slow_read() {
  ReadOutcome out;
  if (plan_.transient_read_rate <= 0.0) return out;
  if (rng_.next_double() >= plan_.transient_read_rate) return out;
  out.faulted = true;
  ++stats_.transient_faults;
  for (int i = 0; i < plan_.transient_max_retries; ++i) {
    ++out.retries;
    ++stats_.transient_retries;
    out.extra_ns += plan_.transient_retry_cost_ns;
    if (rng_.next_double() < plan_.transient_recover_prob) return out;
  }
  out.failed = true;
  ++stats_.transient_failures;
  return out;
}

double FaultInjector::next_bandwidth_factor() {
  if (plan_.bw_period_accesses == 0) return 1.0;
  const std::uint64_t phase = slow_accesses_++ % plan_.bw_period_accesses;
  if (phase >= plan_.bw_window_accesses) return 1.0;
  ++stats_.degraded_accesses;
  return plan_.bw_degraded_factor;
}

}  // namespace mnemo::faultinject
