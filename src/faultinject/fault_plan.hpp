#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mnemo::faultinject {

/// What a consumer should do when a measurement cell keeps failing.
enum class FailPolicy : std::uint8_t {
  kAbort,    ///< surface the first quarantined cell as a hard error
  kDegrade,  ///< quarantine the cell, complete the rest, flag the report
};

std::string_view to_string(FailPolicy policy);

/// Parse "abort" | "degrade". Throws std::invalid_argument otherwise.
FailPolicy parse_fail_policy(const std::string& name);

/// Declarative, seed-driven description of the faults to inject into a
/// deployment's SlowMem. Everything an injector does is a pure function of
/// this plan plus the (seed, stream) pair, so campaigns replay
/// bit-identically (DESIGN.md §6/§7). An all-zero-rate plan is "empty":
/// arming it is a no-op and the platform behaves exactly like a healthy
/// one.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;

  // --- transient SlowMem read faults (media retries) ---------------------
  /// Per-SlowMem-read probability of a transient fault.
  double transient_read_rate = 0.0;
  /// Hardware retry budget per access; exhausting it fails the access.
  int transient_max_retries = 3;
  /// Simulated cost of each retry attempt, ns.
  double transient_retry_cost_ns = 400.0;
  /// Per-retry probability that the retry succeeds.
  double transient_recover_prob = 0.5;

  // --- poisoned lines (permanent media faults) ---------------------------
  /// Fraction of objects whose SlowMem copy is poisoned (uncorrectable on
  /// read; the deployment must remap the key to FastMem).
  double poison_rate = 0.0;
  /// Simulated cost of recovering a poisoned read (ECC/replica path), ns.
  double poison_remap_cost_ns = 1500.0;

  // --- windowed bandwidth-degradation episodes ---------------------------
  /// Every `bw_period_accesses` SlowMem accesses, a degradation window of
  /// `bw_window_accesses` accesses opens. 0 disables episodes.
  std::uint64_t bw_period_accesses = 0;
  std::uint64_t bw_window_accesses = 0;
  /// Multiplier on SlowMem bandwidth inside a window (0 < f <= 1).
  double bw_degraded_factor = 0.25;

  /// True when no fault class is enabled; arming an empty plan is a no-op.
  [[nodiscard]] bool empty() const noexcept {
    return transient_read_rate <= 0.0 && poison_rate <= 0.0 &&
           bw_period_accesses == 0;
  }

  /// Human-readable one-line summary of the enabled fault classes.
  [[nodiscard]] std::string summary() const;

  /// Validate ranges; throws std::invalid_argument on nonsense.
  void check() const;

  /// Parse a comma-separated key=value spec, e.g.
  ///   "transient=1e-4,retries=3,retry_cost=400,recover=0.5,
  ///    poison=5e-5,remap_cost=1500,bw_period=4000,bw_window=400,
  ///    bw_factor=0.25,seed=7"
  /// Unknown keys throw std::invalid_argument listing the valid ones.
  static FaultPlan parse(const std::string& spec);
};

/// Counters of the fault events one deployment absorbed. A deployment with
/// events() == 0 under an armed plan produced a measurement bit-identical
/// to the fault-free platform — the property the campaign layer uses to
/// decide whether a cell is clean.
struct FaultStats {
  std::uint64_t transient_faults = 0;    ///< reads that drew a fault
  std::uint64_t transient_retries = 0;   ///< retry attempts performed
  std::uint64_t transient_failures = 0;  ///< reads whose retries exhausted
  std::uint64_t poison_hits = 0;         ///< reads that hit a poisoned line
  std::uint64_t degraded_accesses = 0;   ///< accesses inside a bw window

  [[nodiscard]] std::uint64_t events() const noexcept {
    return transient_faults + poison_hits + degraded_accesses;
  }

  void merge(const FaultStats& other) noexcept {
    transient_faults += other.transient_faults;
    transient_retries += other.transient_retries;
    transient_failures += other.transient_failures;
    poison_hits += other.poison_hits;
    degraded_accesses += other.degraded_accesses;
  }

  friend bool operator==(const FaultStats& a, const FaultStats& b) {
    return a.transient_faults == b.transient_faults &&
           a.transient_retries == b.transient_retries &&
           a.transient_failures == b.transient_failures &&
           a.poison_hits == b.poison_hits &&
           a.degraded_accesses == b.degraded_accesses;
  }
};

}  // namespace mnemo::faultinject
