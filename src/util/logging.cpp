#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace mnemo::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
}

}  // namespace mnemo::util
