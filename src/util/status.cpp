#include "util/status.hpp"

namespace mnemo::util {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kCapacityExhausted:
      return "capacity_exhausted";
    case ErrorCode::kFaultInjected:
      return "fault_injected";
    case ErrorCode::kRetriesExhausted:
      return "retries_exhausted";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kCanceled:
      return "canceled";
  }
  return "?";
}

std::string Error::to_string() const {
  std::string out(util::to_string(code));
  out += ": ";
  out += message;
  if (key != kNoKey) out += " [key=" + std::to_string(key) + "]";
  if (requested_bytes > 0 || available_bytes > 0) {
    out += " [requested=" + std::to_string(requested_bytes) +
           "B available=" + std::to_string(available_bytes) + "B]";
  }
  if (attempts > 0) out += " [tries=" + std::to_string(attempts) + "]";
  return out;
}

}  // namespace mnemo::util
