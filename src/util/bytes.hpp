#pragma once

#include <cstdint>
#include <string>

namespace mnemo::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Render a byte count as a human-readable string ("1.5 MiB", "100.0 KiB").
std::string format_bytes(std::uint64_t bytes);

/// Render a nanosecond duration as a human-readable string ("1.2 ms").
std::string format_ns(double ns);

}  // namespace mnemo::util
