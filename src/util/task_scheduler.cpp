#include "util/task_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mnemo::util {

using Clock = std::chrono::steady_clock;

/// Join state for one run_batch() call. Guarded by the scheduler mutex;
/// waiters observe remaining == 0 under the same lock that published the
/// cells' writes, so batch results need no separate synchronization.
struct TaskScheduler::Group::BatchState {
  std::size_t remaining = 0;
  std::exception_ptr error;  ///< first cell failure wins
};

void TaskScheduler::Group::submit(TaskClass cls, std::function<void()> fn) {
  {
    std::lock_guard lock(sched_->mu_);
    sched_->submit_locked(*this, cls, std::move(fn), nullptr);
  }
  sched_->cv_.notify_all();
}

std::size_t TaskScheduler::Group::inflight() const {
  std::lock_guard lock(sched_->mu_);
  return queue_.size() + running_;
}

TaskScheduler::TaskScheduler(std::size_t threads) : pool_(threads) {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
    stop_ = true;
  }
  cv_.notify_all();
  // pool_'s destructor joins the workers.
}

std::shared_ptr<TaskScheduler::Group> TaskScheduler::make_group() {
  return make_group(GroupOptions{});
}

std::shared_ptr<TaskScheduler::Group> TaskScheduler::make_group(
    GroupOptions opts) {
  opts.weight = std::max<std::uint32_t>(1, opts.weight);
  std::lock_guard lock(mu_);
  // Group's constructor is private; make_shared can't reach it.
  return std::shared_ptr<Group>(new Group(this, opts, next_group_seq_++));
}

void TaskScheduler::submit_locked(Group& group, TaskClass cls,
                                  std::function<void()> fn,
                                  std::shared_ptr<BatchState> batch) {
  group.queue_.push_back(Task{std::move(fn), cls, std::move(batch)});
  ++outstanding_;
  if (!group.in_run_queue_) {
    group.in_run_queue_ = true;
    // A group (re-)entering the run queue joins the current round with a
    // fresh credit grant.
    group.credits_ = group.opts_.weight;
    run_queue_.push_back(group.shared_from_this());
  }
}

namespace {

[[nodiscard]] Clock::time_point deadline_key(const Deadline& d) {
  return d.armed() ? d.when() : Clock::time_point::max();
}

}  // namespace

std::optional<TaskScheduler::Popped> TaskScheduler::pop_locked(
    bool cells_only) {
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t best = run_queue_.size();
    bool spent_group_waiting = false;
    for (std::size_t i = 0; i < run_queue_.size(); ++i) {
      const Group& g = *run_queue_[i];
      if (cells_only && g.queue_.front().cls != TaskClass::kCell) continue;
      if (g.credits_ == 0) {
        spent_group_waiting = true;
        continue;
      }
      if (best == run_queue_.size()) {
        best = i;
        continue;
      }
      const Group& b = *run_queue_[best];
      const auto kg = deadline_key(g.opts_.deadline);
      const auto kb = deadline_key(b.opts_.deadline);
      if (kg < kb || (kg == kb && g.seq_ < b.seq_)) best = i;
    }
    if (best != run_queue_.size()) {
      std::shared_ptr<Group> group = run_queue_[best];
      Popped popped{std::move(group->queue_.front()), group};
      group->queue_.pop_front();
      --group->credits_;
      ++group->running_;
      if (group->queue_.empty()) {
        run_queue_.erase(run_queue_.begin() +
                         static_cast<std::ptrdiff_t>(best));
        group->in_run_queue_ = false;
      }
      return popped;
    }
    // Nothing dispatchable. If some eligible group was only held back by
    // an empty credit balance, the round is over: refill and retry once.
    if (!spent_group_waiting) return std::nullopt;
    for (auto& g : run_queue_) g->credits_ = g->opts_.weight;
  }
  return std::nullopt;
}

bool TaskScheduler::cell_ready_locked() const {
  return std::any_of(run_queue_.begin(), run_queue_.end(), [](const auto& g) {
    return g->queue_.front().cls == TaskClass::kCell;
  });
}

void TaskScheduler::execute(Popped popped) {
  std::exception_ptr err;
  // Cell shedding: batch cells of a canceled group skip their body but
  // still settle, so the batch drains at a cell boundary. Detached cells
  // carry their own accounting inside fn and must always run.
  const CancelToken* cancel = popped.group->opts_.cancel;
  const bool shed = popped.task.batch != nullptr &&
                    popped.task.cls == TaskClass::kCell &&
                    cancel != nullptr && cancel->canceled();
  if (!shed) {
    try {
      popped.task.fn();
    } catch (...) {
      err = std::current_exception();
    }
  }
  {
    std::lock_guard lock(mu_);
    --popped.group->running_;
    if (popped.task.batch != nullptr) {
      if (err != nullptr && popped.task.batch->error == nullptr) {
        popped.task.batch->error = err;
      }
      err = nullptr;
      --popped.task.batch->remaining;
    }
    MNEMO_ASSERT(outstanding_ > 0);
    --outstanding_;
  }
  cv_.notify_all();
  if (err != nullptr) {
    // A detached task has no waiter to deliver its exception to; request
    // drivers are expected to settle failures themselves.
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      MNEMO_LOG_WARN("task scheduler: detached task threw: %s", e.what());
    } catch (...) {
      MNEMO_LOG_WARN("task scheduler: detached task threw");
    }
  }
}

void TaskScheduler::run_batch(Group& group, std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<BatchState>();
  batch->remaining = n;
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < n; ++i) {
      submit_locked(
          group, TaskClass::kCell, [&fn, i] { fn(i); }, batch);
    }
  }
  cv_.notify_all();

  // Cooperative join: run queued cells (any group's — work conservation)
  // until our batch settles. Restricting help to kCell keeps the stack
  // free of foreign request drivers.
  std::unique_lock lock(mu_);
  while (batch->remaining != 0) {
    if (auto popped = pop_locked(/*cells_only=*/true)) {
      lock.unlock();
      execute(std::move(*popped));
      lock.lock();
      continue;
    }
    cv_.wait(lock, [&] {
      return batch->remaining == 0 || cell_ready_locked();
    });
  }
  const std::exception_ptr err = batch->error;
  lock.unlock();
  if (err != nullptr) std::rethrow_exception(err);
}

TaskScheduler::Ticket TaskScheduler::arm(Clock::time_point when,
                                         std::function<void()> fire) {
  Ticket ticket = 0;
  {
    std::lock_guard lock(mu_);
    ticket = next_ticket_++;
    timers_.emplace(ticket, Timer{when, std::move(fire)});
  }
  cv_.notify_all();  // a parked worker may need to shorten its wait
  return ticket;
}

void TaskScheduler::disarm(Ticket ticket) {
  std::lock_guard lock(mu_);
  timers_.erase(ticket);
}

std::size_t TaskScheduler::armed() const {
  std::lock_guard lock(mu_);
  return timers_.size();
}

void TaskScheduler::fire_due_locked(std::unique_lock<std::mutex>& lock) {
  if (firing_timers_ || timers_.empty()) return;
  const auto now = Clock::now();
  std::vector<std::pair<Clock::time_point, std::function<void()>>> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->second.when <= now) {
      due.emplace_back(it->second.when, std::move(it->second.fire));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  if (due.empty()) return;
  std::stable_sort(due.begin(), due.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  firing_timers_ = true;  // serialize: deadline order across workers
  lock.unlock();
  for (auto& [when, fire] : due) fire();
  lock.lock();
  firing_timers_ = false;
}

std::optional<Clock::time_point> TaskScheduler::next_due_locked() const {
  std::optional<Clock::time_point> next;
  for (const auto& [ticket, timer] : timers_) {
    if (!next.has_value() || timer.when < *next) next = timer.when;
  }
  return next;
}

void TaskScheduler::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    fire_due_locked(lock);
    if (auto popped = pop_locked(/*cells_only=*/false)) {
      lock.unlock();
      execute(std::move(*popped));
      lock.lock();
      continue;
    }
    if (stop_) return;
    if (const auto due = next_due_locked()) {
      cv_.wait_until(lock, *due);
    } else {
      cv_.wait(lock);
    }
  }
}

}  // namespace mnemo::util
