#include "util/hash.hpp"

#include <bit>
#include <cstdio>

namespace mnemo::util {

namespace {
constexpr std::uint64_t kPrimeA = 0x100000001b3ULL;   // FNV 64 prime
constexpr std::uint64_t kPrimeB = 0x00000100000001b3ULL ^ 0x9e3779b97f4a7c15ULL;
}  // namespace

void StableHasher::bytes(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kPrimeA;
    b_ = (b_ ^ p[i]) * kPrimeB;
  }
}

void StableHasher::u32(std::uint32_t v) noexcept {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(buf, sizeof buf);
}

void StableHasher::u64(std::uint64_t v) noexcept {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(buf, sizeof buf);
}

void StableHasher::f64(double v) noexcept {
  u64(std::bit_cast<std::uint64_t>(v));
}

void StableHasher::str(std::string_view s) noexcept {
  u64(s.size());
  bytes(s.data(), s.size());
}

void StableHasher::u64_span(const std::vector<std::uint64_t>& v) noexcept {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

std::string StableHasher::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(a_),
                static_cast<unsigned long long>(b_));
  return buf;
}

}  // namespace mnemo::util
