#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mnemo::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      out << "| ";
      const auto pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << ' ';
    }
    out << "|\n";
  };

  emit(header_);
  for (std::size_t i = 0; i < ncols; ++i) {
    out << '|' << std::string(widths[i] + 2, '-');
  }
  out << "|\n";
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace mnemo::util
