#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mnemo::util::csv {

/// Minimal RFC-4180-ish CSV writer. Fields containing commas, quotes or
/// newlines are quoted; embedded quotes are doubled. Mnemo's primary output
/// artifact (the key/performance/cost table of Section IV) is written
/// through this.
class Writer {
 public:
  /// Opens `path` for writing (truncating). Throws std::runtime_error if
  /// the file cannot be opened.
  explicit Writer(const std::string& path);

  /// Write into an arbitrary stream (used by tests and stdout reports).
  explicit Writer(std::ostream& out);

  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Write one row of pre-rendered fields.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Incremental row building: field(...) repeatedly, then end_row().
  Writer& field(std::string_view v);
  Writer& field(double v, int precision = 6);
  Writer& field(std::uint64_t v);
  Writer& field(std::int64_t v);
  void end_row();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_field(std::string_view v);

  std::ofstream file_;
  std::ostream* out_;
  std::size_t rows_ = 0;
  bool row_open_ = false;
};

/// Parse one CSV line into fields (handles quoting).
std::vector<std::string> parse_line(std::string_view line);

/// Read an entire CSV file into rows of fields. Throws std::runtime_error
/// if the file cannot be opened.
std::vector<std::vector<std::string>> read_file(const std::string& path);

/// A parsed row together with the 1-based line it came from. Blank lines
/// are skipped, so row index and file line diverge — parse diagnostics
/// must report the latter.
struct NumberedRow {
  std::size_t line = 0;
  std::vector<std::string> fields;
};

/// read_file with line provenance, for loaders that emit file:line parse
/// errors. Same open/skip semantics as read_file.
std::vector<NumberedRow> read_file_numbered(const std::string& path);

/// Escape a single field per RFC 4180 (quote iff needed).
std::string escape(std::string_view field);

}  // namespace mnemo::util::csv
