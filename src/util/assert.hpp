#pragma once

#include <cstdio>
#include <cstdlib>

/// Contract macros in the spirit of the C++ Core Guidelines' Expects/Ensures.
/// Violations are programming errors, not recoverable conditions, so they
/// print a diagnostic and abort. They stay enabled in release builds: the
/// simulator's correctness depends on these invariants, and their cost is
/// negligible relative to the work they guard.
#define MNEMO_CONTRACT_IMPL(kind, cond)                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Precondition: caller must satisfy `cond` before the call.
#define MNEMO_EXPECTS(cond) MNEMO_CONTRACT_IMPL("precondition", cond)

/// Postcondition: callee guarantees `cond` on exit.
#define MNEMO_ENSURES(cond) MNEMO_CONTRACT_IMPL("postcondition", cond)

/// Internal invariant that should be unreachable by any input.
#define MNEMO_ASSERT(cond) MNEMO_CONTRACT_IMPL("invariant", cond)
