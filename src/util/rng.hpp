#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace mnemo::util {

/// SplitMix64 — used to seed the main generator and to derive independent
/// per-object streams from a single user-supplied seed. Passes BigCrush when
/// used as a standalone generator; here it is the seed expander recommended
/// by the xoshiro authors.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the repository's deterministic pseudo-random generator.
/// All stochastic components (key distributions, jitter, downsampling) take
/// an explicit seed so every experiment is exactly reproducible. Satisfies
/// the std UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d6e656d6fULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    MNEMO_EXPECTS(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return next_u64();  // full 64-bit range
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64) + lo;
  }

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept {
    MNEMO_EXPECTS(rate > 0.0);
    return -std::log1p(-next_double()) / rate;
  }

  /// Derive an independent child stream (e.g. one per worker / per key).
  Rng fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL));
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Stateless 64-bit mix usable as a hash (FNV-free, avalanching). Used by
/// the scrambled-zipfian generator and the deterministic jitter model.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Canonical digest of a (key, record size) pair: the seed of the
/// deterministic payload generator and, in synthetic mode, the record
/// checksum itself (kvstore::make_record). Lives here rather than in
/// kvstore because it is placement- and repeat-invariant, so
/// workload::CompiledTrace precomputes it once per key per campaign and
/// hands it back to the stores (DESIGN.md §12).
inline std::uint64_t record_digest(std::uint64_t key,
                                   std::uint64_t size) noexcept {
  return mix64(key ^ (size * 0x9e3779b97f4a7c15ULL));
}

/// FNV-1a 64-bit hash of an integer key, as used by YCSB's scrambled
/// zipfian ("FNVhash64").
inline std::uint64_t fnv1a64(std::uint64_t v) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mnemo::util
