#include "util/arena.hpp"

#include <algorithm>
#include <new>

#include "util/assert.hpp"

namespace mnemo::util {

namespace {

/// operator new[] guarantees this alignment for the chunk base; stricter
/// requests are satisfied by padding the bump cursor.
constexpr std::size_t kChunkBaseAlign = __STDCPP_DEFAULT_NEW_ALIGNMENT__;

[[nodiscard]] std::size_t align_up(std::size_t offset,
                                   std::size_t alignment) noexcept {
  return (offset + alignment - 1) & ~(alignment - 1);
}

}  // namespace

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  MNEMO_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0);
  // Alignments beyond the chunk base guarantee are honoured by padding,
  // which align_up can only do relative to a base that is itself aligned;
  // pad generously by the requested alignment in the fit check instead of
  // reasoning about the base pointer's residue.
  if (bytes == 0) bytes = 1;

  // Advance through retained chunks (they grow geometrically, so a later
  // chunk always fits whatever the current one could) until one has room.
  while (chunk_idx_ < chunks_.size()) {
    Chunk& chunk = chunks_[chunk_idx_];
    std::size_t start = align_up(offset_, alignment);
    if (alignment > kChunkBaseAlign) {
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      start = static_cast<std::size_t>(
          align_up(static_cast<std::size_t>(base) + offset_, alignment) -
          base);
    }
    if (start + bytes <= chunk.size) {
      void* p = chunk.data.get() + start;
      bytes_allocated_ += (start - offset_) + bytes;
      offset_ = start + bytes;
      ++allocation_count_;
      return p;
    }
    ++chunk_idx_;
    offset_ = 0;
  }

  // No retained chunk fits: grow. Double the last chunk, floored at the
  // configured first-chunk size, and never smaller than the request (plus
  // headroom for a stricter-than-base alignment).
  std::size_t need = bytes;
  if (alignment > kChunkBaseAlign) need += alignment;
  std::size_t grown = chunks_.empty() ? first_chunk_bytes_
                                      : chunks_.back().size * 2;
  grown = std::max(grown, need);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(grown);
  chunk.size = grown;
  bytes_reserved_ += grown;
  chunks_.push_back(std::move(chunk));
  chunk_idx_ = chunks_.size() - 1;
  offset_ = 0;

  Chunk& fresh = chunks_.back();
  std::size_t start = 0;
  if (alignment > kChunkBaseAlign) {
    const auto base = reinterpret_cast<std::uintptr_t>(fresh.data.get());
    start = static_cast<std::size_t>(
        align_up(static_cast<std::size_t>(base), alignment) - base);
  }
  MNEMO_ASSERT(start + bytes <= fresh.size);
  void* p = fresh.data.get() + start;
  bytes_allocated_ += start + bytes;
  offset_ = start + bytes;
  ++allocation_count_;
  return p;
}

}  // namespace mnemo::util
