#include "util/argparse.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mnemo::util {

namespace {

/// Damerau-Levenshtein distance (insert/delete/substitute/transpose), the
/// classic typo metric: "moedl" is one transposition from "model".
std::size_t edit_distance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<std::size_t>> d(n + 1,
                                          std::vector<std::size_t>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + sub});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

}  // namespace

std::string closest_match(const std::string& query,
                          const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 0;
  for (const std::string& candidate : candidates) {
    const std::size_t distance = edit_distance(query, candidate);
    if (best.empty() || distance < best_distance) {
      best = candidate;
      best_distance = distance;
    }
  }
  // Only suggest when the candidate is plausibly a typo of the query, not
  // a different word entirely.
  if (best.empty() || best_distance > 2 || best_distance >= query.size()) {
    return "";
  }
  return best;
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, std::string help) {
  MNEMO_EXPECTS(!specs_.contains(name));
  Spec s;
  s.help = std::move(help);
  s.is_flag = true;
  specs_.emplace(name, std::move(s));
}

void ArgParser::add_option(const std::string& name, std::string help,
                           std::string default_value) {
  MNEMO_EXPECTS(!specs_.contains(name));
  Spec s;
  s.help = std::move(help);
  s.value = std::move(default_value);
  specs_.emplace(name, std::move(s));
}

bool ArgParser::parse(const std::vector<std::string>& args,
                      std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      if (error != nullptr) {
        std::vector<std::string> known;
        known.reserve(specs_.size());
        for (const auto& [known_name, _] : specs_) {
          known.push_back(known_name);
        }
        *error = "unknown option --" + name;
        const std::string suggestion = closest_match(name, known);
        if (!suggestion.empty()) {
          *error += " (did you mean --" + suggestion + "?)";
        }
      }
      return false;
    }
    Spec& spec = it->second;
    if (spec.seen) {
      if (error != nullptr) {
        *error = "duplicate option --" + name + " (given more than once)";
      }
      return false;
    }
    spec.seen = true;
    if (spec.is_flag) {
      if (has_inline) {
        if (error != nullptr) *error = "--" + name + " takes no value";
        return false;
      }
      continue;
    }
    if (has_inline) {
      spec.value = std::move(inline_value);
    } else {
      if (i + 1 >= args.size()) {
        if (error != nullptr) *error = "--" + name + " requires a value";
        return false;
      }
      spec.value = args[++i];
    }
  }
  return true;
}

bool ArgParser::has_flag(const std::string& name) const {
  const auto it = specs_.find(name);
  MNEMO_EXPECTS(it != specs_.end());
  return it->second.seen;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = specs_.find(name);
  MNEMO_EXPECTS(it != specs_.end() && !it->second.is_flag);
  return it->second.value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not a number: " + v);
  }
}

std::uint64_t ArgParser::get_u64(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not an integer: " + v);
  }
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.is_flag) out << " <value>";
    out << "\n      " << spec.help;
    if (!spec.is_flag && !spec.value.empty()) {
      out << " (default: " << spec.value << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mnemo::util
