#include "util/argparse.hpp"

#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mnemo::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, std::string help) {
  MNEMO_EXPECTS(!specs_.contains(name));
  Spec s;
  s.help = std::move(help);
  s.is_flag = true;
  specs_.emplace(name, std::move(s));
}

void ArgParser::add_option(const std::string& name, std::string help,
                           std::string default_value) {
  MNEMO_EXPECTS(!specs_.contains(name));
  Spec s;
  s.help = std::move(help);
  s.value = std::move(default_value);
  specs_.emplace(name, std::move(s));
}

bool ArgParser::parse(const std::vector<std::string>& args,
                      std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      if (error != nullptr) *error = "unknown option --" + name;
      return false;
    }
    Spec& spec = it->second;
    spec.seen = true;
    if (spec.is_flag) {
      if (has_inline) {
        if (error != nullptr) *error = "--" + name + " takes no value";
        return false;
      }
      continue;
    }
    if (has_inline) {
      spec.value = std::move(inline_value);
    } else {
      if (i + 1 >= args.size()) {
        if (error != nullptr) *error = "--" + name + " requires a value";
        return false;
      }
      spec.value = args[++i];
    }
  }
  return true;
}

bool ArgParser::has_flag(const std::string& name) const {
  const auto it = specs_.find(name);
  MNEMO_EXPECTS(it != specs_.end());
  return it->second.seen;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = specs_.find(name);
  MNEMO_EXPECTS(it != specs_.end() && !it->second.is_flag);
  return it->second.value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not a number: " + v);
  }
}

std::uint64_t ArgParser::get_u64(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not an integer: " + v);
  }
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.is_flag) out << " <value>";
    out << "\n      " << spec.help;
    if (!spec.is_flag && !spec.value.empty()) {
      out << " (default: " << spec.value << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mnemo::util
