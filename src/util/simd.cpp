#include "util/simd.hpp"

#include "util/rng.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(MNEMO_SIMD_OFF)
#define MNEMO_SIMD_X86 1
#include <immintrin.h>
#endif

namespace mnemo::util::simd {

namespace {

// ---- scalar reference paths --------------------------------------------
// These are the kernels on non-x86 targets and MNEMO_SIMD=OFF builds, and
// the tail handlers of the vector paths. The vector implementations below
// must match them bit for bit on every input.

void mix64_scalar(const std::uint64_t* in, std::uint64_t* out,
                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = mix64(in[i]);
}

void mix64_iota_scalar(std::uint64_t first, std::uint64_t* out,
                       std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = mix64(first + i);
}

double min_scalar(const double* x, std::size_t n) noexcept {
  double m = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (x[i] < m) m = x[i];
  }
  return m;
}

void accumulate_scalar(double* acc, const double* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}

std::uint32_t partition_index_scalar(const double* bounds256,
                                     double x) noexcept {
  std::uint32_t base = 0;
  for (std::uint32_t step = 128; step != 0; step >>= 1) {
    const std::uint32_t probe = base + step;
    if (bounds256[probe] <= x) base = probe;
  }
  return base;
}

void partition_scalar(const double* bounds256, const double* x,
                      std::uint32_t* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = partition_index_scalar(bounds256, x[i]);
  }
}

#if defined(MNEMO_SIMD_X86)

// ---- SSE2 (the x86-64 baseline — no target attribute needed) -----------

/// 64x64 -> low 64 multiply from 32-bit partial products: the high cross
/// terms that SSE2/AVX2 lack do not affect the low half being kept.
inline __m128i mullo64_sse2(__m128i a, __m128i b) noexcept {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                    _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i mix64_sse2(__m128i x) noexcept {
  const __m128i c1 =
      _mm_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m128i c2 =
      _mm_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = mullo64_sse2(x, c1);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = mullo64_sse2(x, c2);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  return x;
}

void mix64_batch_sse2(const std::uint64_t* in, std::uint64_t* out,
                      std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), mix64_sse2(x));
  }
  mix64_scalar(in + i, out + i, n - i);
}

void mix64_iota_sse2(std::uint64_t first, std::uint64_t* out,
                     std::size_t n) noexcept {
  std::size_t i = 0;
  __m128i v = _mm_set_epi64x(static_cast<long long>(first + 1),
                             static_cast<long long>(first));
  const __m128i two = _mm_set1_epi64x(2);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), mix64_sse2(v));
    v = _mm_add_epi64(v, two);
  }
  mix64_iota_scalar(first + i, out + i, n - i);
}

double min_sse2(const double* x, std::size_t n) noexcept {
  if (n < 4) return min_scalar(x, n);
  __m128d m = _mm_loadu_pd(x);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) m = _mm_min_pd(m, _mm_loadu_pd(x + i));
  alignas(16) double pair[2];
  _mm_store_pd(pair, m);
  double out = pair[0] < pair[1] ? pair[0] : pair[1];
  for (; i < n; ++i) {
    if (x[i] < out) out = x[i];
  }
  return out;
}

void accumulate_sse2(double* acc, const double* x, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i,
                  _mm_add_pd(_mm_loadu_pd(acc + i), _mm_loadu_pd(x + i)));
  }
  accumulate_scalar(acc + i, x + i, n - i);
}

// ---- AVX2 (runtime-dispatched; compiled via target attribute) ----------

__attribute__((target("avx2"))) inline __m256i mullo64_avx2(
    __m256i a, __m256i b) noexcept {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i mix64_avx2(
    __m256i x) noexcept {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mullo64_avx2(x, c1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mullo64_avx2(x, c2);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

__attribute__((target("avx2"))) void mix64_batch_avx2(
    const std::uint64_t* in, std::uint64_t* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), mix64_avx2(x));
  }
  mix64_scalar(in + i, out + i, n - i);
}

__attribute__((target("avx2"))) void mix64_iota_avx2(
    std::uint64_t first, std::uint64_t* out, std::size_t n) noexcept {
  std::size_t i = 0;
  __m256i v = _mm256_set_epi64x(static_cast<long long>(first + 3),
                                static_cast<long long>(first + 2),
                                static_cast<long long>(first + 1),
                                static_cast<long long>(first));
  const __m256i four = _mm256_set1_epi64x(4);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), mix64_avx2(v));
    v = _mm256_add_epi64(v, four);
  }
  mix64_iota_scalar(first + i, out + i, n - i);
}

__attribute__((target("avx2"))) double min_avx2(const double* x,
                                                std::size_t n) noexcept {
  if (n < 8) return min_sse2(x, n);
  __m256d m = _mm256_loadu_pd(x);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) m = _mm256_min_pd(m, _mm256_loadu_pd(x + i));
  const __m128d folded =
      _mm_min_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
  alignas(16) double pair[2];
  _mm_store_pd(pair, folded);
  double out = pair[0] < pair[1] ? pair[0] : pair[1];
  for (; i < n; ++i) {
    if (x[i] < out) out = x[i];
  }
  return out;
}

__attribute__((target("avx2"))) void accumulate_avx2(
    double* acc, const double* x, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                               _mm256_loadu_pd(x + i)));
  }
  accumulate_scalar(acc + i, x + i, n - i);
}

__attribute__((target("avx2"))) void partition_avx2(
    const double* bounds256, const double* x, std::uint32_t* out,
    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    __m256i base = _mm256_setzero_si256();
    for (std::uint32_t step = 128; step != 0; step >>= 1) {
      const __m256i probe =
          _mm256_add_epi64(base, _mm256_set1_epi64x(step));
      const __m256d b = _mm256_i64gather_pd(bounds256, probe, 8);
      // The same `bounds[probe] <= x` predicate as the scalar search; an
      // ordered compare, so NaN inputs keep base at 0 on every step.
      const __m256d le = _mm256_cmp_pd(b, v, _CMP_LE_OQ);
      base = _mm256_blendv_epi8(base, probe, _mm256_castpd_si256(le));
    }
    alignas(32) std::uint64_t idx[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), base);
    out[i + 0] = static_cast<std::uint32_t>(idx[0]);
    out[i + 1] = static_cast<std::uint32_t>(idx[1]);
    out[i + 2] = static_cast<std::uint32_t>(idx[2]);
    out[i + 3] = static_cast<std::uint32_t>(idx[3]);
  }
  partition_scalar(bounds256, x + i, out + i, n - i);
}

Isa detect_isa() noexcept {
  return __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kSse2;
}

#else  // !MNEMO_SIMD_X86

Isa detect_isa() noexcept { return Isa::kScalar; }

#endif

}  // namespace

Isa active_isa() noexcept {
  static const Isa isa = detect_isa();
  return isa;
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kSse2:
      return "sse2";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

void mix64_batch(const std::uint64_t* in, std::uint64_t* out,
                 std::size_t n) noexcept {
#if defined(MNEMO_SIMD_X86)
  if (active_isa() == Isa::kAvx2) {
    mix64_batch_avx2(in, out, n);
  } else {
    mix64_batch_sse2(in, out, n);
  }
#else
  mix64_scalar(in, out, n);
#endif
}

void mix64_iota_batch(std::uint64_t first, std::uint64_t* out,
                      std::size_t n) noexcept {
#if defined(MNEMO_SIMD_X86)
  if (active_isa() == Isa::kAvx2) {
    mix64_iota_avx2(first, out, n);
  } else {
    mix64_iota_sse2(first, out, n);
  }
#else
  mix64_iota_scalar(first, out, n);
#endif
}

double min_double(const double* x, std::size_t n) noexcept {
#if defined(MNEMO_SIMD_X86)
  return active_isa() == Isa::kAvx2 ? min_avx2(x, n) : min_sse2(x, n);
#else
  return min_scalar(x, n);
#endif
}

void accumulate_lanes(double* acc, const double* x, std::size_t n) noexcept {
#if defined(MNEMO_SIMD_X86)
  if (active_isa() == Isa::kAvx2) {
    accumulate_avx2(acc, x, n);
  } else {
    accumulate_sse2(acc, x, n);
  }
#else
  accumulate_scalar(acc, x, n);
#endif
}

void partition_index_batch(const double* bounds256, const double* x,
                           std::uint32_t* out, std::size_t n) noexcept {
#if defined(MNEMO_SIMD_X86)
  if (active_isa() == Isa::kAvx2) {
    partition_avx2(bounds256, x, out, n);
    return;
  }
#endif
  // The gather-based search needs AVX2; SSE2 and scalar share the plain
  // loop — the predicate sequence is identical either way.
  partition_scalar(bounds256, x, out, n);
}

}  // namespace mnemo::util::simd
