#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace mnemo::util {

AsciiPlot::AsciiPlot(std::string title, std::string x_label,
                     std::string y_label, int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {
  MNEMO_EXPECTS(width_ >= 16 && height_ >= 4);
}

void AsciiPlot::add(PlotSeries series) {
  MNEMO_EXPECTS(series.x.size() == series.y.size());
  series_.push_back(std::move(series));
}

std::string AsciiPlot::render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (!any) {
    out << "(no data)\n";
    return out.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const int cx = static_cast<int>(std::lround(
          (s.x[i] - xmin) / (xmax - xmin) * (width_ - 1)));
      const int cy = static_cast<int>(std::lround(
          (s.y[i] - ymin) / (ymax - ymin) * (height_ - 1)));
      const int row = height_ - 1 - cy;
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(cx)] =
          s.marker;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof buf, "%10.4g ", ymax);
  out << buf << "+" << std::string(static_cast<std::size_t>(width_), '-')
      << "+\n";
  for (int r = 0; r < height_; ++r) {
    out << std::string(11, ' ') << '|' << canvas[static_cast<std::size_t>(r)]
        << "|\n";
  }
  std::snprintf(buf, sizeof buf, "%10.4g ", ymin);
  out << buf << "+" << std::string(static_cast<std::size_t>(width_), '-')
      << "+\n";
  std::snprintf(buf, sizeof buf, "%12.4g", xmin);
  out << buf << std::string(static_cast<std::size_t>(std::max(1, width_ - 12)), ' ');
  std::snprintf(buf, sizeof buf, "%.4g\n", xmax);
  out << buf;
  out << "            x: " << x_label_ << "   y: " << y_label_ << "\n";
  for (const auto& s : series_) {
    out << "            '" << s.marker << "' " << s.name << "\n";
  }
  return out.str();
}

void AsciiPlot::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace mnemo::util
