#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace mnemo::util {

/// A point in (steady) wall-clock time past which work should stop. A
/// default-constructed Deadline never expires; after_ms() arms one. Built
/// on steady_clock so a system clock step can neither fire a deadline
/// early nor park one forever.
class Deadline {
 public:
  Deadline() = default;  ///< never expires

  [[nodiscard]] static Deadline after_ms(std::uint64_t ms) {
    Deadline d;
    d.armed_ = true;
    d.when_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms);
    return d;
  }
  [[nodiscard]] static Deadline never() { return {}; }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= when_;
  }
  /// The instant the deadline fires; meaningful only when armed().
  [[nodiscard]] std::chrono::steady_clock::time_point when() const noexcept {
    return when_;
  }

 private:
  std::chrono::steady_clock::time_point when_{};
  bool armed_ = false;
};

/// Thrown by cancellation points (CancelToken::check, the campaign
/// runner, single-flight waits) when the token is canceled. Carries the
/// typed reason so catchers can answer with `deadline_exceeded` vs
/// `canceled` without parsing messages.
class CanceledError : public std::runtime_error {
 public:
  explicit CanceledError(Error error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}

  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

/// Cooperative cancellation, shared between a request's worker and
/// whoever may cancel it (the deadline watchdog, a disconnect detector).
/// Two cancellation sources compose:
///
///   - an explicit cancel(reason) — sets the flag and runs registered
///     wake-up callbacks (so a blocked waiter, e.g. a single-flight
///     joiner, can be notified rather than polled);
///   - an armed Deadline — canceled() starts answering true the moment it
///     expires even if nobody called cancel(), so purely cooperative
///     consumers (the campaign runner checking between cells) observe the
///     deadline without any watchdog thread.
///
/// The token never interrupts anything by force: work must reach a
/// cancellation point (canceled()/check()) to stop, which is what keeps
/// completed campaign cells deterministic.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void set_deadline(Deadline deadline) {
    std::lock_guard lock(mu_);
    deadline_ = deadline;
  }
  [[nodiscard]] Deadline deadline() const {
    std::lock_guard lock(mu_);
    return deadline_;
  }

  /// Cancel with a typed reason. Idempotent: the first reason wins.
  /// Callbacks run exactly once, outside the token's lock.
  void cancel(Error reason);

  /// True once cancel() ran or the deadline expired.
  [[nodiscard]] bool canceled() const;

  /// Why the token is canceled: the explicit reason when cancel() ran,
  /// a deadline_exceeded error when only the deadline expired, kOk
  /// otherwise.
  [[nodiscard]] Error reason() const;

  /// Cancellation point: throws CanceledError(reason()) when canceled.
  void check() const {
    if (canceled()) throw CanceledError(reason());
  }

  /// Register a wake-up to run when cancel() fires (runs immediately,
  /// in the caller's thread, if the token is already flag-canceled).
  /// Returns an id for remove_callback. A callback registered for a
  /// deadline-armed token only runs if something (the watchdog) calls
  /// cancel() — expiry alone is passive.
  std::size_t on_cancel(std::function<void()> fn);

  /// Best-effort removal: a cancel() racing with removal may still run
  /// the callback once, so callbacks must only touch state that outlives
  /// the token's users (e.g. notify a longer-lived condition variable).
  void remove_callback(std::size_t id);

  /// The typed error a deadline produces.
  [[nodiscard]] static Error deadline_error();

 private:
  mutable std::mutex mu_;
  bool flagged_ = false;
  Error reason_;
  Deadline deadline_;
  std::size_t next_id_ = 1;
  std::vector<std::pair<std::size_t, std::function<void()>>> callbacks_;
};

}  // namespace mnemo::util
