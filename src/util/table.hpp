#pragma once

#include <string>
#include <vector>

namespace mnemo::util {

/// Fixed-width ASCII table renderer used by the bench binaries to print the
/// paper's tables. Columns auto-size to their widest cell; numeric-looking
/// cells are right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a data row. Short rows are padded with empty cells; long rows
  /// widen the table.
  void add_row(std::vector<std::string> cells);

  /// Render the full table (header, separator, rows) as a string.
  [[nodiscard]] std::string render() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Format helpers for consistent cell rendering.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mnemo::util
