#include "util/cancel.hpp"

namespace mnemo::util {

Error CancelToken::deadline_error() {
  Error e;
  e.code = ErrorCode::kDeadlineExceeded;
  e.message = "deadline exceeded";
  return e;
}

void CancelToken::cancel(Error reason) {
  MNEMO_EXPECTS(reason.code != ErrorCode::kOk);
  std::vector<std::pair<std::size_t, std::function<void()>>> run;
  {
    std::lock_guard lock(mu_);
    if (flagged_) return;  // first reason wins
    flagged_ = true;
    reason_ = std::move(reason);
    run.swap(callbacks_);
  }
  for (auto& [id, fn] : run) fn();
}

bool CancelToken::canceled() const {
  std::lock_guard lock(mu_);
  return flagged_ || deadline_.expired();
}

Error CancelToken::reason() const {
  std::lock_guard lock(mu_);
  if (flagged_) return reason_;
  if (deadline_.expired()) return deadline_error();
  return Error{};
}

std::size_t CancelToken::on_cancel(std::function<void()> fn) {
  bool run_now = false;
  std::size_t id = 0;
  {
    std::lock_guard lock(mu_);
    if (flagged_) {
      run_now = true;
    } else {
      id = next_id_++;
      callbacks_.emplace_back(id, std::move(fn));
    }
  }
  if (run_now) fn();
  return id;
}

void CancelToken::remove_callback(std::size_t id) {
  if (id == 0) return;
  std::lock_guard lock(mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->first == id) {
      callbacks_.erase(it);
      return;
    }
  }
}

}  // namespace mnemo::util
