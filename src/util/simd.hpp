#pragma once

#include <cstddef>
#include <cstdint>

namespace mnemo::util::simd {

/// Batch kernels for the lane-fused replay path (DESIGN.md §14). Every
/// kernel is exact — integer ops, IEEE compares and elementwise adds only,
/// never a reassociated float reduction — so using them cannot move a
/// result by even one ULP relative to the scalar loop they replace. The
/// implementation is picked once per process: AVX2 when the CPU has it,
/// SSE2 on any other x86-64, plain scalar elsewhere or when the build was
/// configured with -DMNEMO_SIMD=OFF (the sanitizer gate's second leg).
enum class Isa : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// The implementation the kernels below dispatch to in this process.
[[nodiscard]] Isa active_isa() noexcept;
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// out[i] = util::mix64(in[i]). Bit-exact: the same xor-shift-multiply
/// avalanche, four keys per AVX2 vector (64x64 low multiply synthesized
/// from 32-bit partial products).
void mix64_batch(const std::uint64_t* in, std::uint64_t* out,
                 std::size_t n) noexcept;

/// out[i] = util::mix64(first + i) — the key-hash table build, without
/// materializing the iota input.
void mix64_iota_batch(std::uint64_t first, std::uint64_t* out,
                      std::size_t n) noexcept;

/// Exact minimum of x[0..n). Requires n >= 1, NaN-free input, and no
/// negative zeros (IEEE min is ambiguous on ±0 ties) — both hold for
/// service-time streams, which are finite and non-negative with +0 only.
/// Value-identical to *std::min_element under those preconditions.
[[nodiscard]] double min_double(const double* x, std::size_t n) noexcept;

/// acc[i] += x[i], elementwise. Each slot keeps its own sequential
/// addition chain — this vectorizes *across* independent accumulators
/// (the per-lane service-time totals), never within one, so it is exact.
void accumulate_lanes(double* acc, const double* x, std::size_t n) noexcept;

/// For each x[j]: the largest index i in [0, 256) with bounds256[i] <=
/// x[j], via a branchless 8-step binary search (AVX2: gathered probes,
/// four values per vector). `bounds256` must be ascending with
/// bounds256[0] == -inf; entries past the live range are padded with
/// +inf. Compares only — no arithmetic touches x — so the result is the
/// exact partition index for every representable double. NaN inputs map
/// to index 0.
void partition_index_batch(const double* bounds256, const double* x,
                           std::uint32_t* out, std::size_t n) noexcept;

}  // namespace mnemo::util::simd
