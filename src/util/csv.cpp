#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"

namespace mnemo::util::csv {

std::string escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Writer::Writer(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("csv::Writer: cannot open " + path);
}

Writer::Writer(std::ostream& out) : out_(&out) {}

Writer::~Writer() {
  if (row_open_) end_row();
}

void Writer::write_field(std::string_view v) {
  if (row_open_) *out_ << ',';
  *out_ << escape(v);
  row_open_ = true;
}

Writer& Writer::field(std::string_view v) {
  write_field(v);
  return *this;
}

Writer& Writer::field(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  write_field(buf);
  return *this;
}

Writer& Writer::field(std::uint64_t v) {
  write_field(std::to_string(v));
  return *this;
}

Writer& Writer::field(std::int64_t v) {
  write_field(std::to_string(v));
  return *this;
}

void Writer::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

void Writer::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) write_field(f);
  end_row();
}

void Writer::row(std::initializer_list<std::string_view> fields) {
  for (auto f : fields) write_field(f);
  end_row();
}

std::vector<std::string> parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv::read_file: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_line(line));
  }
  return rows;
}

std::vector<NumberedRow> read_file_numbered(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv::read_file: cannot open " + path);
  std::vector<NumberedRow> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    rows.push_back(NumberedRow{line_no, parse_line(line)});
  }
  return rows;
}

}  // namespace mnemo::util::csv
