#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mnemo::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    TaskNode* node = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || head_ != nullptr; });
      node = pop_locked();
      if (node == nullptr) {
        if (stop_) return;
        continue;
      }
    }
    node->run();
    delete node;
  }
}

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = hardware_threads();
  ThreadPool pool(std::min(threads, n));
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::future<void>> futs;
  const std::size_t workers = std::min(pool.size(), n);
  futs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futs.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mnemo::util
