#include "util/artifact_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

namespace mnemo::util {

namespace {

std::mutex g_write_fault_mu;
WriteFaultHook g_write_fault_hook;

WriteFault consult_write_fault(const std::string& path) {
  std::lock_guard lock(g_write_fault_mu);
  if (!g_write_fault_hook) return {};
  return g_write_fault_hook(path);
}

/// Full-write loop over write(2): retries EINTR and short writes until
/// every byte landed or a real error surfaced. Returns 0 on success,
/// errno otherwise.
int write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not failed: retry
      return errno;
    }
    off += static_cast<std::size_t>(n);
  }
  return 0;
}

/// EINTR-safe close. A failed close after successful writes is reported:
/// on NFS-like filesystems it is where short storage surfaces.
int close_checked(int fd) {
  if (::close(fd) == 0) return 0;
  return errno == EINTR ? 0 : errno;  // POSIX: fd is gone either way
}

}  // namespace

void set_write_fault_hook(WriteFaultHook hook) {
  std::lock_guard lock(g_write_fault_mu);
  g_write_fault_hook = std::move(hook);
}

void BinWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void BinWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void BinWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void BinWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BinWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s);
}

void BinWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void BinReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw ArtifactError("artifact truncated: need " + std::to_string(n) +
                        " bytes, " + std::to_string(remaining()) + " left");
  }
}

std::uint8_t BinReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinReader::f64() { return std::bit_cast<double>(u64()); }

std::string BinReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> BinReader::u64_vec() {
  const std::uint64_t n = u64();
  // Validate before allocating. Divide instead of multiplying: a corrupt
  // length like 2^61 would wrap n * 8 to a passing need() and then throw
  // std::length_error out of reserve() instead of ArtifactError.
  if (n > remaining() / 8) {
    throw ArtifactError("artifact truncated: vector claims " +
                        std::to_string(n) + " elements, " +
                        std::to_string(remaining()) + " bytes left");
  }
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

Status write_file_atomic(const std::string& path,
                         std::string_view contents) {
  // The temp name must be unique per *writer*, not per process: two
  // threads saving the same path concurrently (e.g. sessions racing on
  // one cache key) would otherwise interleave writes into one temp file
  // and rename a torn artifact into place. pid + a process-wide counter
  // keeps names unique across processes sharing a cache dir and across
  // threads within one.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  const WriteFault fault = consult_write_fault(path);
  if (fault.fail_open) {
    return Error{ErrorCode::kFaultInjected,
                 "injected write failure: cannot open " + tmp};
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "cannot open " + tmp + " for writing: " +
                     std::strerror(errno)};
  }

  // A torn write simulates a crash mid-write: only a prefix lands and the
  // temp is deliberately left behind (not cleaned up), exactly the litter
  // a power cut produces. fsck's orphan reaper is what collects it.
  const std::size_t to_write =
      fault.torn() ? static_cast<std::size_t>(
                         fault.torn_fraction < 0.0
                             ? 0.0
                             : fault.torn_fraction *
                                   static_cast<double>(contents.size()))
                   : contents.size();
  const int write_err = write_all(fd, contents.data(), to_write);
  const int close_err = close_checked(fd);
  if (write_err != 0 || close_err != 0) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return Error{ErrorCode::kInvalidArgument,
                 "short write to " + tmp + ": " +
                     std::strerror(write_err != 0 ? write_err : close_err)};
  }
  if (fault.torn()) {
    return Error{ErrorCode::kFaultInjected,
                 "injected torn write: " + std::to_string(to_write) + "/" +
                     std::to_string(contents.size()) + " bytes of " + tmp};
  }
  if (fault.fail_rename) {
    return Error{ErrorCode::kFaultInjected,
                 "injected crash before rename of " + tmp};
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return Error{ErrorCode::kInvalidArgument,
                 "rename " + tmp + " -> " + path + ": " + ec.message()};
  }
  return {};
}

Status append_file(const std::string& path, std::string_view line) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "cannot open " + path + " for append: " +
                     std::strerror(errno)};
  }
  const int write_err = write_all(fd, line.data(), line.size());
  const int close_err = close_checked(fd);
  if (write_err != 0 || close_err != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "short append to " + path + ": " +
                     std::strerror(write_err != 0 ? write_err : close_err)};
  }
  return {};
}

bool read_file(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *contents = ss.str();
  return true;
}

}  // namespace mnemo::util
