#include "util/artifact_io.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mnemo::util {

void BinWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void BinWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void BinWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void BinWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BinWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s);
}

void BinWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void BinReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw ArtifactError("artifact truncated: need " + std::to_string(n) +
                        " bytes, " + std::to_string(remaining()) + " left");
  }
}

std::uint8_t BinReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinReader::f64() { return std::bit_cast<double>(u64()); }

std::string BinReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> BinReader::u64_vec() {
  const std::uint64_t n = u64();
  // Validate before allocating. Divide instead of multiplying: a corrupt
  // length like 2^61 would wrap n * 8 to a passing need() and then throw
  // std::length_error out of reserve() instead of ArtifactError.
  if (n > remaining() / 8) {
    throw ArtifactError("artifact truncated: vector claims " +
                        std::to_string(n) + " elements, " +
                        std::to_string(remaining()) + " bytes left");
  }
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

Status write_file_atomic(const std::string& path,
                         std::string_view contents) {
  // The temp name must be unique per *writer*, not per process: two
  // threads saving the same path concurrently (e.g. sessions racing on
  // one cache key) would otherwise interleave writes into one temp file
  // and rename a torn artifact into place. pid + a process-wide counter
  // keeps names unique across processes sharing a cache dir and across
  // threads within one.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Error{ErrorCode::kInvalidArgument,
                   "cannot open " + tmp + " for writing"};
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      return Error{ErrorCode::kInvalidArgument, "short write to " + tmp};
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return Error{ErrorCode::kInvalidArgument,
                 "rename " + tmp + " -> " + path + ": " + ec.message()};
  }
  return {};
}

bool read_file(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *contents = ss.str();
  return true;
}

}  // namespace mnemo::util
