#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mnemo::util {

/// Stable 128-bit content hash for cache keys and artifact checksums.
/// Two independent FNV-1a lanes over the same byte stream; the digest is a
/// pure function of the fed bytes — no pointers, no addresses, no
/// locale — so keys are identical across runs, thread counts and builds.
/// Not cryptographic: it addresses a local cache, not an adversary.
///
/// Multi-byte values are fed in a fixed little-endian order and strings
/// are length-prefixed, so field boundaries cannot alias (("ab","c") and
/// ("a","bc") hash differently).
class StableHasher {
 public:
  void bytes(const void* data, std::size_t n) noexcept;

  void u8(std::uint8_t v) noexcept { bytes(&v, 1); }
  void u32(std::uint32_t v) noexcept;
  void u64(std::uint64_t v) noexcept;
  void i32(std::int32_t v) noexcept { u32(static_cast<std::uint32_t>(v)); }
  void b(bool v) noexcept { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — two doubles hash equal iff they are
  /// bit-identical (so +0.0 and -0.0 differ, as bit-identity demands).
  void f64(double v) noexcept;
  /// Length-prefixed, so adjacent strings cannot alias.
  void str(std::string_view s) noexcept;
  void u64_span(const std::vector<std::uint64_t>& v) noexcept;

  [[nodiscard]] std::uint64_t lo() const noexcept { return a_; }
  [[nodiscard]] std::uint64_t hi() const noexcept { return b_; }

  /// 32-char lowercase hex digest of the 128-bit state.
  [[nodiscard]] std::string hex() const;

 private:
  // Lane A: standard FNV-1a 64. Lane B: same scheme from a different
  // offset basis with a different prime, so the lanes do not collapse
  // into one another.
  std::uint64_t a_ = 0xcbf29ce484222325ULL;
  std::uint64_t b_ = 0x6c62272e07bb0142ULL;
};

}  // namespace mnemo::util
