#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace mnemo::util {

/// Structured-concurrency executor scheduling short, shared-nothing tasks
/// (campaign cells, request state-machine steps) from many concurrent
/// requests onto one fixed set of workers.
///
/// Tasks are submitted through per-request *groups*. Dispatch across
/// groups is earliest-deadline-first inside weighted-round-robin rounds:
///
///   - every runnable group holds a credit balance, refilled to its
///     configured weight only once *all* runnable groups are spent — so
///     each group is guaranteed `weight` dispatches per round and no
///     group starves, however large its backlog;
///   - within a round, the next task comes from the credit-holding group
///     with the earliest armed deadline (deadline-free groups sort last),
///     ties broken by group creation order, which makes dispatch
///     deterministic whenever a single thread drains the queue.
///
/// Waits never park a worker on another task's progress: run_batch()
/// callers cooperatively execute queued cells while their own batch
/// drains, and request-level joins are expressed as continuations
/// (re-submitted tasks), not blocked threads. A deadline queue (arm /
/// disarm, fired in deadline order by whichever worker is idle soonest)
/// replaces the dedicated watchdog thread.
///
/// Determinism: the scheduler moves work between threads but never
/// reorders observable results — batch users index into pre-sized output
/// slots and merge in fixed order (DESIGN.md §6), so grids stay
/// bit-identical at any worker count.
class TaskScheduler {
 public:
  /// Scheduling class of a task. kCell tasks are leaf units of bounded
  /// work that never wait (campaign cells); kRequest tasks drive request
  /// state machines and may submit further tasks. Cooperative helpers in
  /// run_batch() execute only kCell tasks, so a thread already inside a
  /// request can never re-enter another request's driver beneath it.
  enum class TaskClass : std::uint8_t { kCell = 0, kRequest = 1 };

  struct GroupOptions {
    /// EDF key: groups with earlier armed deadlines dispatch first within
    /// a round; an unarmed deadline sorts after every armed one.
    Deadline deadline;
    /// Credits granted per round-robin round (min 1).
    std::uint32_t weight = 1;
    /// Group-wide cancellation scope: batch cells of a canceled group are
    /// shed at dispatch (their batch still drains, so waiters settle).
    /// Not owned; must outlive the group's tasks.
    const CancelToken* cancel = nullptr;
  };

  class Group : public std::enable_shared_from_this<Group> {
   public:
    /// Enqueue a task. kRequest tasks must not throw — a detached task
    /// has no waiter to deliver the exception to (logged and dropped).
    void submit(TaskClass cls, std::function<void()> fn);

    [[nodiscard]] const GroupOptions& options() const noexcept {
      return opts_;
    }
    [[nodiscard]] TaskScheduler& scheduler() const noexcept {
      return *sched_;
    }
    /// Tasks queued or currently executing (test introspection).
    [[nodiscard]] std::size_t inflight() const;

   private:
    friend class TaskScheduler;
    struct BatchState;
    struct Task {
      std::function<void()> fn;
      TaskClass cls = TaskClass::kCell;
      std::shared_ptr<BatchState> batch;  ///< null for detached tasks
    };

    Group(TaskScheduler* sched, GroupOptions opts, std::uint64_t seq)
        : sched_(sched), opts_(opts), seq_(seq) {}

    TaskScheduler* sched_;
    GroupOptions opts_;
    std::uint64_t seq_;
    // Guarded by sched_->mu_:
    std::deque<Task> queue_;
    std::uint32_t credits_ = 0;
    std::size_t running_ = 0;
    bool in_run_queue_ = false;
  };

  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit TaskScheduler(std::size_t threads = 0);

  /// Drains all submitted tasks (including ones they submit), then joins
  /// the workers. Pending deadline timers are dropped unfired.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  [[nodiscard]] std::shared_ptr<Group> make_group(GroupOptions opts);
  [[nodiscard]] std::shared_ptr<Group> make_group();  ///< default options
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  /// Fork-join: submit fn(0..n) as kCell tasks of `group`, then
  /// cooperatively execute queued cells (any group's) on the calling
  /// thread until all n have settled. The first exception thrown by a
  /// cell is rethrown here after the batch drains. Callable from worker
  /// tasks and external threads alike; the caller's help is what keeps a
  /// single-worker scheduler live-locked-free under nested batches.
  void run_batch(Group& group, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

  /// Deadline queue (the former DeadlineWatchdog, folded in). `fire`
  /// runs once on a worker thread at or after `when`, in deadline order
  /// when several are due; disarm() is best-effort — a timer already
  /// being fired may still run. Callbacks must not block.
  using Ticket = std::uint64_t;
  [[nodiscard]] Ticket arm(std::chrono::steady_clock::time_point when,
                           std::function<void()> fire);
  void disarm(Ticket ticket);
  [[nodiscard]] std::size_t armed() const;

 private:
  using BatchState = Group::BatchState;
  using Task = Group::Task;
  struct Popped {
    Task task;
    std::shared_ptr<Group> group;
  };
  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::function<void()> fire;
  };

  void submit_locked(Group& group, TaskClass cls, std::function<void()> fn,
                     std::shared_ptr<BatchState> batch);
  [[nodiscard]] std::optional<Popped> pop_locked(bool cells_only);
  [[nodiscard]] bool cell_ready_locked() const;
  void execute(Popped popped);
  void fire_due_locked(std::unique_lock<std::mutex>& lock);
  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point>
  next_due_locked() const;
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool firing_timers_ = false;
  std::uint64_t next_group_seq_ = 0;
  Ticket next_ticket_ = 1;
  std::size_t outstanding_ = 0;  ///< tasks submitted and not yet settled
  std::vector<std::shared_ptr<Group>> run_queue_;  ///< groups w/ queued work
  std::map<Ticket, Timer> timers_;
  ThreadPool pool_;  ///< low-level backend; declared last: joins first
};

}  // namespace mnemo::util
