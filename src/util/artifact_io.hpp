#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace mnemo::util {

/// Thrown by BinReader when the byte stream is shorter or shaped
/// differently than the schema expects — a truncated or corrupt artifact.
/// Consumers (the ArtifactStore) treat it as a cache miss, never a crash.
class ArtifactError : public std::runtime_error {
 public:
  explicit ArtifactError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only binary serializer for pipeline artifacts. Fixed-width
/// little-endian integers, bit-cast doubles and length-prefixed strings,
/// so the byte stream is identical across platforms and runs — the
/// property the "cached == recomputed, bit for bit" contract rests on.
class BinWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void b(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  void u64_vec(const std::vector<std::uint64_t>& v);

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Mirror of BinWriter. Every accessor throws ArtifactError on underrun,
/// and vector/string lengths are validated against the bytes actually
/// remaining, so a truncated payload can never trigger a huge allocation.
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  bool b() { return u8() != 0; }
  std::string str();
  std::vector<std::uint64_t> u64_vec();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// What the injected-fault hook may do to one atomic write. The default
/// (all fields untouched) lets the write through unharmed. A torn write
/// models a crash mid-write: only a prefix of the temp file lands and
/// the rename never happens, so the orphaned temp is exactly what a real
/// power cut would leave for fsck to reap.
struct WriteFault {
  bool fail_open = false;    ///< temp file cannot be created
  bool fail_rename = false;  ///< crash between write and rename
  /// Fraction of the payload that lands before the simulated crash;
  /// < 1.0 tears the write (the temp holds only that prefix and the
  /// rename never runs), 1.0 (the default) writes everything.
  double torn_fraction = 1.0;

  [[nodiscard]] bool torn() const noexcept { return torn_fraction < 1.0; }
};

/// Chaos seam consulted by write_file_atomic before every write. Installed
/// by the deterministic I/O fault injector (faultinject/io_fault) in chaos
/// tests; never set in production. nullptr clears it.
using WriteFaultHook = std::function<WriteFault(const std::string& path)>;
void set_write_fault_hook(WriteFaultHook hook);

/// Crash-safe whole-file write: the contents land in a writer-unique
/// `path + ".tmp.<pid>.<n>"` first and are renamed into place, so a reader
/// never observes a half-written file — it sees either the old content or
/// the new — and two concurrent writers of the same path resolve to
/// last-writer-wins, never a torn file. A crash leaves at worst a stale
/// temp file that fsck later reaps. Raw write(2) loop underneath: EINTR
/// retries and short writes are handled, so a slow filesystem can never
/// silently truncate an artifact.
Status write_file_atomic(const std::string& path, std::string_view contents);

/// EINTR-safe single-call append (O_APPEND) — the artifact-store journal's
/// write primitive. `line` should be one newline-terminated record; one
/// append maps to one write(2) burst so concurrent appenders interleave at
/// record granularity, never mid-record.
Status append_file(const std::string& path, std::string_view line);

/// Read a whole file. Returns false if the file does not exist or cannot
/// be opened (the caller decides whether that is a miss or an error).
bool read_file(const std::string& path, std::string* contents);

}  // namespace mnemo::util
