#pragma once

#include <cstdarg>
#include <string>

namespace mnemo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo; benches lower it via --verbose-style flags.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style leveled logging to stderr with a level prefix. Thread-safe
/// per call (single write).
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define MNEMO_LOG_DEBUG(...) \
  ::mnemo::util::log(::mnemo::util::LogLevel::kDebug, __VA_ARGS__)
#define MNEMO_LOG_INFO(...) \
  ::mnemo::util::log(::mnemo::util::LogLevel::kInfo, __VA_ARGS__)
#define MNEMO_LOG_WARN(...) \
  ::mnemo::util::log(::mnemo::util::LogLevel::kWarn, __VA_ARGS__)
#define MNEMO_LOG_ERROR(...) \
  ::mnemo::util::log(::mnemo::util::LogLevel::kError, __VA_ARGS__)

}  // namespace mnemo::util
