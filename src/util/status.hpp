#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace mnemo::util {

/// Failure taxonomy of the typed-error spine. Codes classify *what went
/// wrong* so callers can route on them (retry, quarantine, abort) without
/// parsing messages.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kCapacityExhausted,   ///< a memory node could not fit the request
  kFaultInjected,       ///< an injected fault failed the operation
  kRetriesExhausted,    ///< bounded retry gave up
  kInvalidArgument,     ///< malformed configuration or input
  kFailedPrecondition,  ///< upstream result unusable (e.g. dead baseline)
  kOverloaded,          ///< bounded queue full — retry later (backpressure)
  kDeadlineExceeded,    ///< the request's deadline passed before completion
  kCanceled,            ///< cooperatively canceled (client gone, shutdown)
};

std::string_view to_string(ErrorCode code);

/// A structured error: code + message + machine-readable context. The
/// context fields are meaningful only for the codes that set them (e.g.
/// `key`/`requested_bytes`/`available_bytes` on kCapacityExhausted).
struct Error {
  static constexpr std::uint64_t kNoKey = ~0ULL;

  ErrorCode code = ErrorCode::kOk;
  std::string message;
  std::uint64_t key = kNoKey;        ///< offending key, if any
  std::uint64_t requested_bytes = 0;  ///< bytes the failed operation needed
  std::uint64_t available_bytes = 0;  ///< capacity remaining at failure
  int attempts = 0;                   ///< tries performed before giving up

  /// Render "code: message [key=... requested=... available=... tries=...]".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code && a.message == b.message && a.key == b.key &&
           a.requested_bytes == b.requested_bytes &&
           a.available_bytes == b.available_bytes &&
           a.attempts == b.attempts;
  }
};

/// Success-or-Error for operations without a payload.
class Status {
 public:
  Status() = default;  ///< ok
  Status(Error error) : error_(std::move(error)) {  // NOLINT(*-explicit-*)
    MNEMO_EXPECTS(error_->code != ErrorCode::kOk);
  }

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  [[nodiscard]] const Error& error() const {
    MNEMO_EXPECTS(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Success-with-value or Error. Lightweight: exactly a variant, no
/// exceptions involved; accessing the wrong alternative is a contract
/// violation (MNEMO_EXPECTS), mirroring Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(*-explicit-*)
  Result(Error error) : v_(std::move(error)) {  // NOLINT(*-explicit-*)
    MNEMO_EXPECTS(std::get<Error>(v_).code != ErrorCode::kOk);
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(v_);
  }
  [[nodiscard]] const T& value() const {
    MNEMO_EXPECTS(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() {
    MNEMO_EXPECTS(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] const Error& error() const {
    MNEMO_EXPECTS(!ok());
    return std::get<Error>(v_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Malformed-input error carrying the source file and 1-based line of the
/// offending content. Derives from std::invalid_argument so existing
/// malformed-content expectations keep holding; what() is already
/// "file:line: message".
class ParseError : public std::invalid_argument {
 public:
  ParseError(std::string file, std::size_t line, const std::string& what)
      : std::invalid_argument(file + ":" + std::to_string(line) + ": " +
                              what),
        file_(std::move(file)),
        line_(line) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

}  // namespace mnemo::util
