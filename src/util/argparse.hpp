#pragma once

#include <map>
#include <string>
#include <vector>

namespace mnemo::util {

/// Case-sensitive nearest-match over `candidates` by Damerau-Levenshtein
/// edit distance, for "did you mean" diagnostics. Returns the closest
/// candidate when its distance is small relative to the query (<= 2, and
/// strictly less than the query length), empty string otherwise.
[[nodiscard]] std::string closest_match(
    const std::string& query, const std::vector<std::string>& candidates);

/// Minimal command-line parser for the mnemo CLI: boolean flags and
/// string-valued options (`--name value` or `--name=value`), plus
/// positional arguments. Unknown flags (reported with a "did you mean"
/// nearest-match suggestion), duplicated flags and missing values are
/// errors rather than being ignored — callers print the message plus
/// help() and exit 2, the CLI's usage-error convention.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register a boolean flag (present/absent).
  void add_flag(const std::string& name, std::string help);

  /// Register a valued option with a default.
  void add_option(const std::string& name, std::string help,
                  std::string default_value);

  /// Parse argv[start..). Returns false and fills *error on failure.
  bool parse(const std::vector<std::string>& args, std::string* error);

  [[nodiscard]] bool has_flag(const std::string& name) const;
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Rendered usage text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace mnemo::util
