#include "util/bytes.hpp"

#include <array>
#include <cstdio>

namespace mnemo::util {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string format_ns(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

}  // namespace mnemo::util
