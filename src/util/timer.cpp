#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace mnemo::util {

double ThreadCpuTimer::now_s() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mnemo::util
