#pragma once

#include <chrono>

namespace mnemo::util {

/// Monotonic wall-clock stopwatch. Only used to measure the *tool's own*
/// overhead (Table IV) — all workload performance numbers come from the
/// simulated clock, never from this.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mnemo::util
