#pragma once

#include <chrono>

namespace mnemo::util {

/// Monotonic wall-clock stopwatch. Only used to measure the *tool's own*
/// overhead (Table IV) — all workload performance numbers come from the
/// simulated clock, never from this.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch. Unlike WallTimer it does not advance
/// while the calling thread is descheduled, so sums over concurrent
/// workers stay meaningful even when the pool oversubscribes the cores.
/// Falls back to wall time on platforms without a thread-CPU clock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now_s()) {}

  void reset() { start_ = now_s(); }

  /// Elapsed CPU seconds spent by this thread since construction/reset().
  [[nodiscard]] double elapsed_s() const { return now_s() - start_; }

 private:
  static double now_s();

  double start_;
};

}  // namespace mnemo::util
