#pragma once

#include <string>
#include <vector>

namespace mnemo::util {

/// One named XY series for terminal plotting.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

/// Tiny terminal scatter/line plotter so the bench binaries can show the
/// *shape* of each paper figure (who wins, where the knee falls) without a
/// graphics stack. Series share one canvas; axes are linear and auto-scaled.
class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string x_label, std::string y_label,
            int width = 72, int height = 20);

  void add(PlotSeries series);

  /// Render the canvas, axis labels and a per-series legend.
  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  std::vector<PlotSeries> series_;
};

}  // namespace mnemo::util
