#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mnemo::util {

/// Fixed-size thread pool. Benches use it to fan sweep points out across
/// cores; each submitted task is a self-contained, shared-nothing simulation
/// run so results stay deterministic regardless of scheduling order.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Hardware concurrency with the zero-report fallback applied (min 1).
[[nodiscard]] std::size_t hardware_threads();

/// Run fn(i) for i in [0, n) on a transient pool and wait for completion.
/// Exceptions from tasks propagate to the caller (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace mnemo::util
