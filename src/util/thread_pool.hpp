#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mnemo::util {

/// Fixed-size thread pool. Benches use it to fan sweep points out across
/// cores; each submitted task is a self-contained, shared-nothing simulation
/// run so results stay deterministic regardless of scheduling order.
///
/// Queue representation: an intrusive singly-linked list of task nodes.
/// submit() performs exactly one allocation (the node, which embeds the
/// callable and its promise) instead of the three a
/// shared_ptr<packaged_task> wrapped in a std::function used to cost.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Fn = std::decay_t<F>;
    using R = std::invoke_result_t<Fn>;
    auto* node = new TaskImpl<Fn, R>(std::forward<F>(fn));
    std::future<R> fut = node->promise.get_future();
    {
      std::lock_guard lock(mu_);
      push_locked(node);
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  /// Intrusive queue node: the link lives inside the task object itself.
  struct TaskNode {
    TaskNode* next = nullptr;
    virtual ~TaskNode() = default;
    /// Runs the task; failures land in the embedded promise, never escape.
    virtual void run() noexcept = 0;
  };

  template <typename Fn, typename R>
  struct TaskImpl final : TaskNode {
    Fn fn;
    std::promise<R> promise;

    explicit TaskImpl(Fn f) : fn(std::move(f)) {}

    void run() noexcept override {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise.set_value();
        } else {
          promise.set_value(fn());
        }
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
  };

  void push_locked(TaskNode* node) {
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      tail_ = node;
    }
  }

  [[nodiscard]] TaskNode* pop_locked() {
    TaskNode* node = head_;
    if (node != nullptr) {
      head_ = node->next;
      if (head_ == nullptr) tail_ = nullptr;
    }
    return node;
  }

  void worker_loop();

  std::vector<std::thread> workers_;
  TaskNode* head_ = nullptr;
  TaskNode* tail_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Hardware concurrency with the zero-report fallback applied (min 1).
[[nodiscard]] std::size_t hardware_threads();

/// Run fn(i) for i in [0, n) on a transient pool and wait for completion.
/// Exceptions from tasks propagate to the caller (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace mnemo::util
