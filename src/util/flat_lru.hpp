#pragma once

#include <cstdint>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace mnemo::util {

/// Boundary between the dense-ID fast path and the overflow hash map for
/// the flat tables on the replay hot path (FlatLru below, and the object
/// table in HybridMemory). IDs below this index a flat vector directly;
/// rarer IDs above it (tagged namespaces like per-store overhead objects,
/// see kvstore.cpp) fall back to a hash map, so correctness never depends
/// on density — only speed does. 2^20 comfortably covers every trace the
/// repo generates while bounding the table size even for adversarial
/// sparse IDs.
inline constexpr std::uint64_t kDenseIdCap = 1ULL << 20;

/// Payload type for FlatLru users that only need recency order (e.g. the
/// per-slab-class LRUs in Cachet, where the key itself is the value).
struct NoPayload {};

/// Array-backed intrusive LRU keyed by 64-bit IDs, built for the replay
/// hot path (DESIGN.md §8): the simulator guarantees record keys are dense
/// integers [0, key_count), so membership is a vector index instead of a
/// hash lookup, and recency is prev/next *slot indices* inside one
/// contiguous slot pool instead of a std::list of heap nodes. Moving an
/// entry to the MRU end rewrites four integers; nothing is allocated once
/// the pool has grown to the working-set size (reserve() up front makes
/// steady state allocation-free).
///
/// IDs below kAutoDenseCap index a flat table directly; rarer IDs above it
/// (tagged namespaces like per-store overhead objects, see kvstore.cpp)
/// fall back to a small overflow hash map, so correctness never depends on
/// density — only speed does.
///
/// Order semantics are exactly those of the std::list-based LRUs this
/// replaces: push_front/touch make an entry most-recent, back() is the
/// eviction victim.
template <typename Payload>
class FlatLru {
 public:
  /// IDs below this are indexed by a flat vector (grown on demand, at most
  /// 4 bytes per ID); IDs at or above it go to the overflow map.
  static constexpr std::uint64_t kAutoDenseCap = kDenseIdCap;

  /// The slot pool and dense index allocate from `memory` — a campaign
  /// cell's arena when one is plumbed through (DESIGN.md §12), the default
  /// heap resource otherwise. The rare overflow map stays on the heap.
  FlatLru() = default;
  explicit FlatLru(std::pmr::memory_resource* memory)
      : slots_(memory != nullptr ? memory : std::pmr::get_default_resource()),
        dense_(memory != nullptr ? memory : std::pmr::get_default_resource()) {
  }

  /// Pre-size the dense index for IDs [0, ids) and the slot pool for
  /// `slots` resident entries, so steady-state operation never allocates.
  void reserve(std::size_t ids, std::size_t slots) {
    const std::size_t dense =
        ids < kAutoDenseCap ? ids : static_cast<std::size_t>(kAutoDenseCap);
    if (dense > dense_.size()) dense_.resize(dense, kAbsent);
    slots_.reserve(slots);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Payload of `id` without disturbing recency; nullptr if absent.
  [[nodiscard]] Payload* find(std::uint64_t id) {
    const std::int32_t slot = slot_of(id);
    return slot == kAbsent ? nullptr : &slots_[static_cast<std::size_t>(slot)]
                                            .payload;
  }
  [[nodiscard]] const Payload* find(std::uint64_t id) const {
    const std::int32_t slot = slot_of(id);
    return slot == kAbsent ? nullptr : &slots_[static_cast<std::size_t>(slot)]
                                            .payload;
  }

  /// Move `id` to the MRU end and return its payload; nullptr if absent.
  [[nodiscard]] Payload* touch(std::uint64_t id) {
    const std::int32_t slot = slot_of(id);
    if (slot == kAbsent) return nullptr;
    move_to_front(slot);
    return &slots_[static_cast<std::size_t>(slot)].payload;
  }

  /// Hint the id→slot index load for an upcoming touch()/find() of `id`.
  /// The lane-fused replay (core/lane_band) issues this for the *next*
  /// op's key while the current op executes, so the index line is warm by
  /// the time the lane reaches it. Advisory only — never reads or moves
  /// recency state, so results are identical with or without the hint.
  void prefetch(std::uint64_t id) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (id < dense_.size()) {
      __builtin_prefetch(&dense_[static_cast<std::size_t>(id)]);
    }
#else
    (void)id;
#endif
  }

  /// Insert `id` (must be absent) at the MRU end.
  void push_front(std::uint64_t id, Payload payload) {
    std::int32_t slot;
    if (free_ != kAbsent) {
      slot = free_;
      free_ = slots_[static_cast<std::size_t>(slot)].next;
    } else {
      MNEMO_ASSERT(slots_.size() <
                   static_cast<std::size_t>(kAbsent));
      slot = static_cast<std::int32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.id = id;
    s.payload = std::move(payload);
    s.prev = kAbsent;
    s.next = head_;
    if (head_ != kAbsent) slots_[static_cast<std::size_t>(head_)].prev = slot;
    head_ = slot;
    if (tail_ == kAbsent) tail_ = slot;
    set_slot_of(id, slot);
    ++size_;
  }

  /// LRU-end entry; requires a non-empty LRU.
  [[nodiscard]] std::uint64_t back_id() const {
    MNEMO_EXPECTS(tail_ != kAbsent);
    return slots_[static_cast<std::size_t>(tail_)].id;
  }
  [[nodiscard]] const Payload& back() const {
    MNEMO_EXPECTS(tail_ != kAbsent);
    return slots_[static_cast<std::size_t>(tail_)].payload;
  }

  /// Drop the LRU-end entry (the eviction victim).
  void pop_back() {
    MNEMO_EXPECTS(tail_ != kAbsent);
    erase_slot(tail_);
  }

  /// Drop `id` if present; returns whether it was.
  bool erase(std::uint64_t id) {
    const std::int32_t slot = slot_of(id);
    if (slot == kAbsent) return false;
    erase_slot(slot);
    return true;
  }

  void clear() {
    // Keep the grown capacity (dense table + slot pool) so a clear between
    // measurement phases does not re-trigger warm-up allocations.
    for (std::size_t i = 0; i < dense_.size(); ++i) dense_[i] = kAbsent;
    overflow_.clear();
    slots_.clear();
    head_ = tail_ = free_ = kAbsent;
    size_ = 0;
  }

 private:
  static constexpr std::int32_t kAbsent = -1;

  struct Slot {
    std::uint64_t id = 0;
    std::int32_t prev = kAbsent;
    std::int32_t next = kAbsent;
    Payload payload{};
  };

  [[nodiscard]] std::int32_t slot_of(std::uint64_t id) const {
    if (id < dense_.size()) return dense_[static_cast<std::size_t>(id)];
    if (id < kAutoDenseCap) return kAbsent;  // dense region not grown yet
    const auto it = overflow_.find(id);
    return it == overflow_.end() ? kAbsent : it->second;
  }

  void set_slot_of(std::uint64_t id, std::int32_t slot) {
    if (id < kAutoDenseCap) {
      if (id >= dense_.size()) {
        std::size_t grown = dense_.empty() ? 64 : dense_.size() * 2;
        while (grown <= id) grown *= 2;
        if (grown > kAutoDenseCap) {
          grown = static_cast<std::size_t>(kAutoDenseCap);
        }
        dense_.resize(grown, kAbsent);
      }
      dense_[static_cast<std::size_t>(id)] = slot;
      return;
    }
    overflow_[id] = slot;
  }

  void clear_slot_of(std::uint64_t id) {
    if (id < kAutoDenseCap) {
      dense_[static_cast<std::size_t>(id)] = kAbsent;
      return;
    }
    overflow_.erase(id);
  }

  void unlink(std::int32_t slot) {
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.prev != kAbsent) {
      slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    } else {
      head_ = s.next;
    }
    if (s.next != kAbsent) {
      slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    } else {
      tail_ = s.prev;
    }
  }

  void move_to_front(std::int32_t slot) {
    if (slot == head_) return;
    unlink(slot);
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.prev = kAbsent;
    s.next = head_;
    slots_[static_cast<std::size_t>(head_)].prev = slot;
    head_ = slot;
    if (tail_ == kAbsent) tail_ = slot;
  }

  void erase_slot(std::int32_t slot) {
    unlink(slot);
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    clear_slot_of(s.id);
    s.next = free_;
    free_ = slot;
    --size_;
  }

  std::pmr::vector<Slot> slots_;                    ///< entry pool
  std::pmr::vector<std::int32_t> dense_;            ///< id → slot, -1 absent
  std::unordered_map<std::uint64_t, std::int32_t> overflow_;
  std::int32_t head_ = kAbsent;  ///< MRU end
  std::int32_t tail_ = kAbsent;  ///< LRU end (eviction victim)
  std::int32_t free_ = kAbsent;  ///< slot free list, threaded via next
  std::size_t size_ = 0;
};

}  // namespace mnemo::util
