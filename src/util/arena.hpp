#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

namespace mnemo::util {

/// Monotonic grow-once/reset-per-cell allocator for campaign cells
/// (DESIGN.md §12): a std::pmr::memory_resource that bump-allocates out of
/// a chain of geometrically growing chunks. Deallocation is a no-op —
/// everything a cell allocated is released at once by reset(), which
/// rewinds to the first chunk while *keeping* every chunk, so after the
/// first cell warmed the arena up, subsequent cells on the same worker
/// allocate without ever touching malloc.
///
/// Single-threaded by design: each ThreadPool worker owns one Arena
/// (thread_local in the campaign runner) and campaign cells are
/// shared-nothing, so no synchronization is needed or provided.
///
/// Requests larger than the next chunk would be get a dedicated chunk of
/// exactly the needed size, spliced into the chain like any other — they
/// are reused across reset() too.
class Arena final : public std::pmr::memory_resource {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewind to the start of the first chunk, keeping every chunk's memory.
  /// Invalidates all outstanding allocations — callers must not hold any
  /// container backed by this arena across a reset().
  void reset() noexcept {
    chunk_idx_ = 0;
    offset_ = 0;
    bytes_allocated_ = 0;
    allocation_count_ = 0;
  }

  /// Bytes handed out since the last reset (includes alignment padding).
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }
  /// Total chunk capacity held (survives reset — the grow-once footprint).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return bytes_reserved_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }
  [[nodiscard]] std::size_t allocation_count() const noexcept {
    return allocation_count_;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                     std::size_t /*alignment*/) override {
    // Monotonic: individual frees are no-ops; reset() releases everything.
  }
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_idx_ = 0;  ///< chunk currently bumping
  std::size_t offset_ = 0;     ///< bump cursor within chunks_[chunk_idx_]
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t allocation_count_ = 0;
};

}  // namespace mnemo::util
