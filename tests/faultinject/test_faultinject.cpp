#include "faultinject/fault_injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "faultinject/fault_plan.hpp"
#include "hybridmem/hybrid_memory.hpp"

namespace mnemo::faultinject {
namespace {

TEST(FaultPlan, DefaultIsEmptyAndArmable) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.summary(), "no faults");
  EXPECT_NO_THROW(plan.check());
}

TEST(FaultPlan, ParseFillsEveryField) {
  const FaultPlan plan = FaultPlan::parse(
      "transient=1e-4,retries=5,retry_cost=250,recover=0.75,"
      "poison=5e-5,remap_cost=2000,bw_period=4000,bw_window=400,"
      "bw_factor=0.5,seed=7");
  EXPECT_DOUBLE_EQ(plan.transient_read_rate, 1e-4);
  EXPECT_EQ(plan.transient_max_retries, 5);
  EXPECT_DOUBLE_EQ(plan.transient_retry_cost_ns, 250.0);
  EXPECT_DOUBLE_EQ(plan.transient_recover_prob, 0.75);
  EXPECT_DOUBLE_EQ(plan.poison_rate, 5e-5);
  EXPECT_DOUBLE_EQ(plan.poison_remap_cost_ns, 2000.0);
  EXPECT_EQ(plan.bw_period_accesses, 4000u);
  EXPECT_EQ(plan.bw_window_accesses, 400u);
  EXPECT_DOUBLE_EQ(plan.bw_degraded_factor, 0.5);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_THROW(FaultPlan::parse("transient"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("transient=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bogus=1"), std::invalid_argument);
  // Parse validates ranges through check().
  EXPECT_THROW(FaultPlan::parse("transient=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bw_period=100"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bw_period=10,bw_window=20"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bw_period=10,bw_window=5,bw_factor=0"),
               std::invalid_argument);
}

TEST(FaultPlan, SummaryNamesEnabledClasses) {
  FaultPlan plan;
  plan.transient_read_rate = 1e-3;
  EXPECT_NE(plan.summary().find("transient reads"), std::string::npos);
  plan.poison_rate = 1e-4;
  EXPECT_NE(plan.summary().find("poisoned lines"), std::string::npos);
  plan.bw_period_accesses = 100;
  plan.bw_window_accesses = 10;
  EXPECT_NE(plan.summary().find("bandwidth windows"), std::string::npos);
}

TEST(FailPolicy, RoundTrip) {
  EXPECT_EQ(to_string(FailPolicy::kAbort), "abort");
  EXPECT_EQ(to_string(FailPolicy::kDegrade), "degrade");
  EXPECT_EQ(parse_fail_policy("abort"), FailPolicy::kAbort);
  EXPECT_EQ(parse_fail_policy("degrade"), FailPolicy::kDegrade);
  EXPECT_THROW(parse_fail_policy("explode"), std::invalid_argument);
}

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.transient_read_rate = 0.3;
  plan.transient_recover_prob = 0.5;
  plan.poison_rate = 0.1;
  plan.bw_period_accesses = 10;
  plan.bw_window_accesses = 3;
  plan.bw_degraded_factor = 0.25;
  return plan;
}

TEST(FaultInjector, SamePlanAndStreamReplaysBitIdentically) {
  FaultInjector a(busy_plan(), 42);
  FaultInjector b(busy_plan(), 42);
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.on_slow_read();
    const auto rb = b.on_slow_read();
    ASSERT_EQ(ra.faulted, rb.faulted);
    ASSERT_EQ(ra.failed, rb.failed);
    ASSERT_EQ(ra.retries, rb.retries);
    ASSERT_EQ(ra.extra_ns, rb.extra_ns);
    ASSERT_EQ(a.next_bandwidth_factor(), b.next_bandwidth_factor());
  }
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_GT(a.stats().events(), 0u);
}

TEST(FaultInjector, DifferentStreamsDrawDifferentOutcomes) {
  FaultInjector a(busy_plan(), 1);
  FaultInjector b(busy_plan(), 2);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.on_slow_read().faulted != b.on_slow_read().faulted) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, PoisonMembershipIsPureAndOrderIndependent) {
  FaultInjector a(busy_plan(), 9);
  std::vector<bool> forward;
  forward.reserve(200);
  for (std::uint64_t k = 0; k < 200; ++k) forward.push_back(a.poisoned(k));
  // Re-query in reverse, interleaved with RNG-advancing reads: membership
  // must not depend on call order or RNG position.
  for (std::uint64_t k = 200; k-- > 0;) {
    (void)a.on_slow_read();
    ASSERT_EQ(a.poisoned(k), forward[k]) << "key " << k;
  }
  // And it matches a fresh injector with the same (plan, stream).
  FaultInjector b(busy_plan(), 9);
  for (std::uint64_t k = 0; k < 200; ++k) {
    ASSERT_EQ(b.poisoned(k), forward[k]);
  }
}

TEST(FaultInjector, PoisonRateIsApproximatelyHonored) {
  FaultPlan plan;
  plan.poison_rate = 0.1;
  FaultInjector inj(plan, 3);
  int hits = 0;
  const int n = 20'000;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(n); ++k) {
    if (inj.poisoned(k)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(FaultInjector, ZeroRatesNeverFault) {
  const FaultPlan plan;  // empty
  FaultInjector inj(plan, 5);
  for (int i = 0; i < 1000; ++i) {
    const auto r = inj.on_slow_read();
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.extra_ns, 0.0);
    EXPECT_EQ(inj.next_bandwidth_factor(), 1.0);
    EXPECT_FALSE(inj.poisoned(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(inj.stats().events(), 0u);
}

TEST(FaultInjector, BandwidthWindowsOpenOnSchedule) {
  FaultPlan plan;
  plan.bw_period_accesses = 10;
  plan.bw_window_accesses = 3;
  plan.bw_degraded_factor = 0.25;
  FaultInjector inj(plan, 0);
  // The window clock is counter-based: within every period of 10 accesses,
  // exactly 3 are degraded — deterministically, with no RNG involved.
  int degraded = 0;
  for (int i = 0; i < 100; ++i) {
    const double f = inj.next_bandwidth_factor();
    if (f != 1.0) {
      EXPECT_DOUBLE_EQ(f, 0.25);
      ++degraded;
    }
  }
  EXPECT_EQ(degraded, 30);
  EXPECT_EQ(inj.stats().degraded_accesses, 30u);
}

TEST(FaultInjector, PausedInjectorLeavesAccessesHealthy) {
  // Suppression lives in the memory layer: while paused() the platform
  // must not consult the injector at all, so even a rate-1.0 plan leaves
  // the access bit-identical to the fault-free platform.
  hybridmem::HybridMemory memory(
      hybridmem::paper_testbed_with_capacity(64ULL * 1024 * 1024));
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.poison_rate = 1.0;
  memory.arm_faults(plan, 4);

  hybridmem::HybridMemory healthy(
      hybridmem::paper_testbed_with_capacity(64ULL * 1024 * 1024));
  ASSERT_TRUE(memory.place(1, 4096, hybridmem::NodeId::kSlow));
  ASSERT_TRUE(healthy.place(1, 4096, hybridmem::NodeId::kSlow));

  {
    FaultPause pause(memory.fault_injector());
    const auto faulty = memory.access(1, hybridmem::MemOp::kRead, {});
    const auto clean = healthy.access(1, hybridmem::MemOp::kRead, {});
    EXPECT_EQ(faulty.fault, hybridmem::FaultKind::kNone);
    EXPECT_FALSE(faulty.failed);
    EXPECT_EQ(faulty.ns, clean.ns);
  }
  EXPECT_EQ(memory.fault_stats().events(), 0u);

  // Unpaused, the same access draws the poison fault immediately.
  memory.drop_caches();
  const auto r = memory.access(1, hybridmem::MemOp::kRead, {});
  EXPECT_EQ(r.fault, hybridmem::FaultKind::kPoisoned);
  EXPECT_GT(memory.fault_stats().events(), 0u);
}

TEST(FaultPause, IsNullSafeAndNests) {
  FaultPause outer(nullptr);  // healthy platform: no injector at all
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  FaultInjector inj(plan, 0);
  {
    FaultPause a(&inj);
    {
      FaultPause b(&inj);
      EXPECT_TRUE(inj.paused());
    }
    EXPECT_TRUE(inj.paused());
  }
  EXPECT_FALSE(inj.paused());
}

TEST(FaultStats, MergeSumsCounters) {
  FaultStats a{1, 2, 3, 4, 5};
  const FaultStats b{10, 20, 30, 40, 50};
  a.merge(b);
  EXPECT_EQ(a, (FaultStats{11, 22, 33, 44, 55}));
  EXPECT_EQ(a.events(), 11u + 44u + 55u);
}

}  // namespace
}  // namespace mnemo::faultinject
