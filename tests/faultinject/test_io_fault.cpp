// The deterministic I/O chaos source: every injected decision is a pure
// function of (seed, site identity), so a chaos campaign replays
// bit-identically under any thread interleaving — the property that lets
// the chaos ctest label run under TSan without becoming flaky.

#include "faultinject/io_fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "util/artifact_io.hpp"

namespace mnemo::faultinject {
namespace {

namespace fs = std::filesystem;

TEST(IoFaultPlan, DefaultIsEmpty) {
  const IoFaultPlan plan;
  EXPECT_TRUE(plan.empty());
}

TEST(IoFaultPlan, AnyEnabledClassMakesItNonEmpty) {
  IoFaultPlan plan;
  plan.write_fail_rate = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = IoFaultPlan{};
  plan.torn_write_rate = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = IoFaultPlan{};
  plan.slow_cell_rate = 0.5;
  EXPECT_TRUE(plan.empty());  // a stall of 0 ms is no stall
  plan.slow_cell_ms = 5.0;
  EXPECT_FALSE(plan.empty());
}

TEST(IoFaultInjector, DecisionsReplayBitIdenticallyAcrossInterleavings) {
  IoFaultPlan plan;
  plan.seed = 0xfeed;
  plan.write_fail_rate = 0.3;
  plan.torn_write_rate = 0.3;

  // Injector A sees path x's writes and path y's writes interleaved one
  // way, injector B another way. The k-th decision for each path must
  // match exactly: decisions hash (seed, path, per-path ordinal), never
  // global arrival order.
  IoFaultInjector a(plan);
  IoFaultInjector b(plan);
  std::vector<util::WriteFault> ax;
  std::vector<util::WriteFault> ay;
  for (int i = 0; i < 16; ++i) {
    ax.push_back(a.on_write("x"));
    ay.push_back(a.on_write("y"));
  }
  std::vector<util::WriteFault> bx;
  std::vector<util::WriteFault> by;
  for (int i = 0; i < 16; ++i) by.push_back(b.on_write("y"));
  for (int i = 0; i < 16; ++i) bx.push_back(b.on_write("x"));

  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ax[static_cast<std::size_t>(i)].fail_open,
              bx[static_cast<std::size_t>(i)].fail_open);
    EXPECT_EQ(ax[static_cast<std::size_t>(i)].torn(),
              bx[static_cast<std::size_t>(i)].torn());
    EXPECT_EQ(ay[static_cast<std::size_t>(i)].fail_open,
              by[static_cast<std::size_t>(i)].fail_open);
    EXPECT_EQ(ay[static_cast<std::size_t>(i)].torn(),
              by[static_cast<std::size_t>(i)].torn());
  }
}

TEST(IoFaultInjector, RateOneAlwaysFiresRateZeroNever) {
  IoFaultPlan always;
  always.write_fail_rate = 1.0;
  IoFaultInjector hot(always);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(hot.on_write("p").fail_open);
  }
  EXPECT_EQ(hot.stats().writes_seen, 8u);
  EXPECT_EQ(hot.stats().write_failures, 8u);

  IoFaultInjector cold{IoFaultPlan{}};
  for (int i = 0; i < 8; ++i) {
    const util::WriteFault fault = cold.on_write("p");
    EXPECT_FALSE(fault.fail_open);
    EXPECT_FALSE(fault.fail_rename);
    EXPECT_FALSE(fault.torn());
  }
  EXPECT_EQ(cold.stats().write_failures, 0u);
  EXPECT_EQ(cold.stats().torn_writes, 0u);
}

TEST(IoFaultInjector, TornFractionOneStillTearsWhenDrawn) {
  // A plan asking for torn writes with torn_fraction = 1.0 must not
  // silently produce un-torn writes: the injector clamps the fraction
  // strictly below 1.0 so WriteFault::torn() stays true.
  IoFaultPlan plan;
  plan.torn_write_rate = 1.0;
  plan.torn_fraction = 1.0;
  IoFaultInjector injector(plan);
  const util::WriteFault fault = injector.on_write("p");
  EXPECT_TRUE(fault.torn());
  EXPECT_LT(fault.torn_fraction, 1.0);
  EXPECT_EQ(injector.stats().torn_writes, 1u);
}

TEST(IoFaultInjector, CellDelaysAreDeterministicPerCell) {
  IoFaultPlan plan;
  plan.seed = 0xabc;
  plan.slow_cell_rate = 0.5;
  plan.slow_cell_ms = 7.0;
  IoFaultInjector a(plan);
  IoFaultInjector b(plan);
  std::uint64_t hits = 0;
  for (std::size_t cell = 0; cell < 64; ++cell) {
    const double da = a.cell_delay_ms(cell);
    EXPECT_EQ(da, b.cell_delay_ms(cell)) << "cell " << cell;
    EXPECT_TRUE(da == 0.0 || da == 7.0);
    if (da > 0.0) ++hits;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 64u);  // rate 0.5: some stalled, some not
  EXPECT_EQ(a.stats().delayed_cells, hits);
}

TEST(ScopedIoFaults, HooksAtomicWritesAndUninstallsOnExit) {
  const fs::path dir = fs::path(testing::TempDir()) / "mnemo_io_fault_hook";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "victim.bin").string();

  {
    IoFaultPlan plan;
    plan.write_fail_rate = 1.0;
    ScopedIoFaults chaos(plan);
    const util::Status status = util::write_file_atomic(path, "payload");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, util::ErrorCode::kFaultInjected);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_EQ(chaos.injector().stats().write_failures, 1u);
  }
  // Scope exited: the hook is gone and writes succeed again.
  ASSERT_TRUE(util::write_file_atomic(path, "payload").ok());
  std::string back;
  ASSERT_TRUE(util::read_file(path, &back));
  EXPECT_EQ(back, "payload");
  fs::remove_all(dir);
}

TEST(ScopedIoFaults, TornWriteLeavesAPrefixTempAndNoFinalFile) {
  const fs::path dir = fs::path(testing::TempDir()) / "mnemo_io_fault_torn";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "victim.bin").string();
  const std::string payload(1000, 'x');

  IoFaultPlan plan;
  plan.torn_write_rate = 1.0;
  plan.torn_fraction = 0.25;
  ScopedIoFaults chaos(plan);
  const util::Status status = util::write_file_atomic(path, payload);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kFaultInjected);
  EXPECT_FALSE(fs::exists(path));  // the rename never happened

  // Exactly the crash litter a power cut would leave: one temp holding
  // the torn prefix.
  std::size_t temps = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    ASSERT_NE(name.find(".tmp."), std::string::npos) << name;
    EXPECT_EQ(fs::file_size(e.path()), 250u);
    ++temps;
  }
  EXPECT_EQ(temps, 1u);
  fs::remove_all(dir);
}

TEST(ChaosCellDelay, NoInjectorMeansNoStall) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t cell = 0; cell < 1000; ++cell) chaos_cell_delay(cell);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            500);
}

}  // namespace
}  // namespace mnemo::faultinject
