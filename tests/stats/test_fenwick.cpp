#include "stats/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace mnemo::stats {
namespace {

TEST(Fenwick, EmptyAndZeroPrefix) {
  const FenwickTree tree(10);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(0), 0.0);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(10), 0.0);
}

TEST(Fenwick, PointUpdatesAndPrefixSums) {
  FenwickTree tree(8);
  tree.add(0, 1.0);
  tree.add(3, 2.5);
  tree.add(7, 4.0);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(1), 1.0);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(4), 3.5);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(8), 7.5);
  EXPECT_DOUBLE_EQ(tree.range_sum(1, 4), 2.5);
  EXPECT_DOUBLE_EQ(tree.range_sum(4, 8), 4.0);
  EXPECT_DOUBLE_EQ(tree.range_sum(3, 3), 0.0);
}

TEST(Fenwick, NegativeDeltasRemoveWeight) {
  FenwickTree tree(4);
  tree.add(2, 5.0);
  tree.add(2, -5.0);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(4), 0.0);
}

TEST(Fenwick, RandomizedAgainstNaiveModel) {
  util::Rng rng(17);
  constexpr std::size_t kN = 200;
  FenwickTree tree(kN);
  std::vector<double> naive(kN, 0.0);
  for (int op = 0; op < 5'000; ++op) {
    if (rng.next_double() < 0.5) {
      const auto i = static_cast<std::size_t>(rng.uniform(0, kN - 1));
      const double delta = rng.gaussian();
      tree.add(i, delta);
      naive[i] += delta;
    } else {
      auto lo = static_cast<std::size_t>(rng.uniform(0, kN));
      auto hi = static_cast<std::size_t>(rng.uniform(0, kN));
      if (lo > hi) std::swap(lo, hi);
      double expected = 0.0;
      for (std::size_t i = lo; i < hi; ++i) expected += naive[i];
      ASSERT_NEAR(tree.range_sum(lo, hi), expected, 1e-6);
    }
  }
}

}  // namespace
}  // namespace mnemo::stats
