#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace mnemo::stats {
namespace {

TEST(SolveLinear, TwoByTwo) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  const auto x = solve_linear({{2, 1}, {1, -1}}, {5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear({{0, 1}, {1, 0}}, {3, 4});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  EXPECT_THROW(solve_linear({{1, 2}, {2, 4}}, {1, 2}), std::runtime_error);
}

TEST(LeastSquares, RecoversExactLinearModel) {
  // y = 3*a + 0.5*b with no noise.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.next_double() * 10.0;
    const double b = rng.next_double() * 100.0;
    rows.push_back({a, b});
    y.push_back(3.0 * a + 0.5 * b);
  }
  const auto beta = least_squares(rows, y);
  EXPECT_NEAR(beta[0], 3.0, 1e-9);
  EXPECT_NEAR(beta[1], 0.5, 1e-9);
}

TEST(LeastSquares, NoisyRecoveryWithinTolerance) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  util::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.next_double() * 10.0;
    rows.push_back({1.0, a});
    y.push_back(7.0 + 2.0 * a + rng.gaussian() * 0.5);
  }
  const auto beta = least_squares(rows, y);
  EXPECT_NEAR(beta[0], 7.0, 0.1);
  EXPECT_NEAR(beta[1], 2.0, 0.02);
}

TEST(LeastSquares, ShapeMismatchThrows) {
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {1.0}};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(least_squares(rows, y), std::invalid_argument);
  const std::vector<double> short_y = {1.0};
  std::vector<std::vector<double>> ok_rows = {{1.0}, {2.0}};
  EXPECT_THROW(least_squares(ok_rows, short_y), std::invalid_argument);
}

TEST(Ridge, ShrinksCoefficients) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.next_double();
    rows.push_back({a});
    y.push_back(5.0 * a);
  }
  const auto exact = ridge(rows, y, 0.0);
  const auto shrunk = ridge(rows, y, 100.0);
  EXPECT_NEAR(exact[0], 5.0, 1e-9);
  EXPECT_LT(shrunk[0], exact[0]);
  EXPECT_GT(shrunk[0], 0.0);
}

TEST(Ridge, RegularizesSingularSystem) {
  // Perfectly collinear features: plain LS throws, ridge solves.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    rows.push_back({static_cast<double>(i), 2.0 * i});
    y.push_back(3.0 * i);
  }
  EXPECT_THROW(least_squares(rows, y), std::runtime_error);
  const auto beta = ridge(rows, y, 1e-3);
  // Prediction is still right even if the split is regularized.
  EXPECT_NEAR(beta[0] * 4.0 + beta[1] * 8.0, 12.0, 0.01);
}

TEST(FitLine, InterceptAndSlope) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const Line line = fit_line(x, y);
  EXPECT_NEAR(line.intercept, 1.0, 1e-9);
  EXPECT_NEAR(line.slope, 2.0, 1e-9);
  EXPECT_NEAR(line.at(10.0), 21.0, 1e-9);
}

TEST(RSquared, PerfectAndPoorFits) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
  const std::vector<double> mean_only = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(y, mean_only), 0.0);
}

}  // namespace
}  // namespace mnemo::stats
