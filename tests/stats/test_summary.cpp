#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mnemo::stats {
namespace {

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  Welford w;
  for (const double x : xs) w.add(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
  // Sample variance: sum((x-4)^2)/(n-1) = (9+4+1+0+36)/4 = 12.5
  EXPECT_DOUBLE_EQ(w.variance(), 12.5);
  EXPECT_DOUBLE_EQ(w.stddev(), std::sqrt(12.5));
}

TEST(Welford, SingleAndEmptyVariance) {
  Welford w;
  EXPECT_EQ(w.variance(), 0.0);
  w.add(5.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.mean(), 5.0);
}

TEST(Welford, MergeEqualsSequential) {
  util::Rng rng(5);
  Welford all;
  Welford left;
  Welford right;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.gaussian() * 3.0 + 7.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a;
  Welford b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Welford c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
}

TEST(Percentile, KnownOrderStatistics) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  // Interpolated: q=0.1 over positions 0..4 -> pos 0.4 -> 1.4
  EXPECT_DOUBLE_EQ(percentile(xs, 0.1), 1.4);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 7.0);
}

class PercentileMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotonic, NonDecreasingInQ) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.gaussian());
  double prev = percentile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = percentile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotonic,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(MeanMedianStddev, Basics) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Boxplot, FiveNumberSummaryAndWhiskers) {
  // 1..11 plus an outlier at 100.
  std::vector<double> xs;
  for (int i = 1; i <= 11; ++i) xs.push_back(i);
  xs.push_back(100.0);
  const BoxplotStats b = boxplot(xs);
  EXPECT_EQ(b.n, 12u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
  EXPECT_GT(b.q3, b.median);
  EXPECT_GT(b.median, b.q1);
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_LE(b.whisker_hi, 11.0);  // 100 is outside the upper fence
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
}

TEST(Boxplot, AllEqualSamples) {
  const std::vector<double> xs(10, 3.0);
  const BoxplotStats b = boxplot(xs);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 3.0);
  EXPECT_EQ(b.outliers, 0u);
}

}  // namespace
}  // namespace mnemo::stats
