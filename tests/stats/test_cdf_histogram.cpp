#include <gtest/gtest.h>

#include <vector>

#include "stats/cdf.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace mnemo::stats {
namespace {

TEST(EmpiricalCdf, StepFunctionValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
}

TEST(EmpiricalCdf, CurveIsMonotonic) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.gaussian());
  const EmpiricalCdf cdf(xs);
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CumulativeShare, SumsToOneAndMonotone) {
  const std::vector<std::uint64_t> counts = {5, 0, 3, 2};
  const auto share = cumulative_share(counts);
  ASSERT_EQ(share.size(), 4u);
  EXPECT_DOUBLE_EQ(share[0], 0.5);
  EXPECT_DOUBLE_EQ(share[1], 0.5);
  EXPECT_DOUBLE_EQ(share[2], 0.8);
  EXPECT_DOUBLE_EQ(share[3], 1.0);
}

TEST(Histogram, CountsAndEdgeSaturation) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps into bucket 0
  h.add(100.0);  // clamps into bucket 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(Histogram, QuantileApproximatesExact) {
  Histogram h(0.0, 1.0, 1000);
  util::Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.next_double();
    h.add(u);
    xs.push_back(u);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(h.quantile(q), q, 0.01) << "q=" << q;
  }
}

TEST(Histogram, BucketBoundsArePartition) {
  Histogram h(2.0, 12.0, 5);
  for (std::size_t i = 0; i < h.buckets(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_hi(i), h.bucket_lo(i) + 2.0);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(h.bucket_lo(i), h.bucket_hi(i - 1));
    }
  }
}

TEST(Histogram, RenderShowsNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace mnemo::stats
