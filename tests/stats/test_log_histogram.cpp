#include "stats/log_histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace mnemo::stats {
namespace {

TEST(LogHistogram, DefaultIsEmpty) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
}

TEST(LogHistogram, BucketBoundsAreGeometric) {
  const double ratio = LogHistogram::bucket_hi_ns(0) /
                       LogHistogram::bucket_lo_ns(0);
  for (std::size_t i = 1; i < 30; ++i) {
    EXPECT_NEAR(LogHistogram::bucket_hi_ns(i) / LogHistogram::bucket_lo_ns(i),
                ratio, 1e-9);
    EXPECT_NEAR(LogHistogram::bucket_lo_ns(i),
                LogHistogram::bucket_hi_ns(i - 1), 1e-6);
  }
  EXPECT_DOUBLE_EQ(LogHistogram::bucket_lo_ns(0), LogHistogram::kMinNs);
}

TEST(LogHistogram, QuantileTracksExactPercentiles) {
  LogHistogram h;
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100'000; ++i) {
    // Lognormal latencies around 100 us.
    const double ns = 1e5 * std::exp(0.5 * rng.gaussian());
    h.add(ns);
    xs.push_back(ns);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = percentile(xs, q);
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.13) << "q=" << q;
  }
}

TEST(LogHistogram, SaturatesOutOfRange) {
  LogHistogram h;
  h.add(0.001);   // below min
  h.add(1e12);    // above max
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(LogHistogram::kBuckets - 1), 1u);
}

TEST(LogHistogram, MergeSumsCounts) {
  LogHistogram a;
  LogHistogram b;
  a.add(100.0);
  b.add(100.0);
  b.add(1e6);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.quantile(0.0), 100.0, 30.0);
}

TEST(MixtureQuantile, DegeneratesToComponentQuantiles) {
  LogHistogram fast;
  LogHistogram slow;
  util::Rng rng(4);
  for (int i = 0; i < 50'000; ++i) {
    fast.add(1e4 * (1.0 + 0.1 * rng.gaussian()));
    slow.add(1e6 * (1.0 + 0.1 * rng.gaussian()));
  }
  EXPECT_NEAR(mixture_quantile(fast, 1.0, slow, 0.0, 0.5),
              fast.quantile(0.5), fast.quantile(0.5) * 0.05);
  EXPECT_NEAR(mixture_quantile(fast, 0.0, slow, 1.0, 0.5),
              slow.quantile(0.5), slow.quantile(0.5) * 0.05);
}

TEST(MixtureQuantile, WeightsShiftTheTail) {
  LogHistogram fast;
  LogHistogram slow;
  util::Rng rng(5);
  for (int i = 0; i < 50'000; ++i) {
    fast.add(1e4 * (1.0 + 0.05 * rng.gaussian()));
    slow.add(1e6 * (1.0 + 0.05 * rng.gaussian()));
  }
  // 90% of requests fast: the p95 straddles the slow component.
  const double p95 = mixture_quantile(fast, 0.9, slow, 0.1, 0.95);
  EXPECT_GT(p95, 5e5);
  // 99% fast: the p95 stays in the fast component.
  const double p95_mostly_fast = mixture_quantile(fast, 0.99, slow, 0.01, 0.95);
  EXPECT_LT(p95_mostly_fast, 5e4);
  // Monotone in the slow weight.
  double prev = 0.0;
  for (const double ws : {0.0, 0.1, 0.3, 0.7, 1.0}) {
    const double v = mixture_quantile(fast, 1.0 - ws, slow, ws, 0.99);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LogHistogram, BucketBoundsTableIsExactAtEveryBoundary) {
  // bucket_bounds() is the 256-entry partition table the lane-fused
  // replay feeds to util::simd::partition_index_batch: bounds[i] must be
  // the smallest double classified into bucket i, so batch bucketing by
  // "largest i with bounds[i] <= x" reproduces bucket_index() bit for
  // bit. Probe every boundary and its one-ulp neighbour.
  const std::span<const double, 256> bounds = LogHistogram::bucket_bounds();
  EXPECT_EQ(bounds[0], -std::numeric_limits<double>::infinity());
  for (std::size_t i = 1; i < LogHistogram::kBuckets; ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]) << "i=" << i;
    ASSERT_EQ(LogHistogram::bucket_index(bounds[i]), i) << "i=" << i;
    ASSERT_EQ(LogHistogram::bucket_index(std::nextafter(bounds[i], 0.0)),
              i - 1)
        << "i=" << i;
  }
  // The padding past the live buckets is +inf so no finite sample can
  // ever partition beyond kBuckets - 1.
  for (std::size_t i = LogHistogram::kBuckets; i < 256; ++i) {
    ASSERT_EQ(bounds[i], std::numeric_limits<double>::infinity())
        << "i=" << i;
  }
}

TEST(LogHistogram, AddBatchMatchesPerOpAdd) {
  util::Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 10'000; ++i) {
    // Log-uniform across the full range plus both saturation ends.
    samples.push_back(std::pow(10.0, rng.next_double() * 14.0 - 2.0));
  }
  const std::span<const double, 256> bounds = LogHistogram::bucket_bounds();
  for (std::size_t i = 1; i < LogHistogram::kBuckets; ++i) {
    samples.push_back(bounds[i]);
    samples.push_back(std::nextafter(bounds[i], 0.0));
  }

  LogHistogram scalar;
  for (const double s : samples) scalar.add(s);
  LogHistogram batched;
  batched.add_batch(samples);
  EXPECT_EQ(batched, scalar);

  // Batch appends compose with prior per-op contents, and an empty batch
  // is a no-op.
  LogHistogram mixed;
  mixed.add(100.0);
  mixed.add_batch(std::span<const double>(samples.data(), samples.size()));
  mixed.add_batch(std::span<const double>{});
  LogHistogram mixed_scalar;
  mixed_scalar.add(100.0);
  for (const double s : samples) mixed_scalar.add(s);
  EXPECT_EQ(mixed, mixed_scalar);
}

TEST(MixtureQuantile, UnnormalizedWeightsAreEquivalent) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 1000; ++i) {
    a.add(1e3 + i);
    b.add(1e5 + i);
  }
  EXPECT_NEAR(mixture_quantile(a, 0.5, b, 0.5, 0.9),
              mixture_quantile(a, 5.0, b, 5.0, 0.9), 1e-6);
}

}  // namespace
}  // namespace mnemo::stats
