#include <gtest/gtest.h>

#include "pricing/cost_regression.hpp"
#include "pricing/vm_instance.hpp"

namespace mnemo::pricing {
namespace {

TEST(Catalogs, CoverTheThreeProviders) {
  const auto catalogs = paper_catalogs();
  ASSERT_EQ(catalogs.size(), 3u);
  EXPECT_EQ(catalogs[0].provider, "AWS");
  EXPECT_EQ(catalogs[1].provider, "Google");
  EXPECT_EQ(catalogs[2].provider, "Azure");
  for (const auto& c : catalogs) {
    EXPECT_GE(c.instances.size(), 4u);
    for (const auto& vm : c.instances) {
      EXPECT_GT(vm.vcpus, 0.0);
      EXPECT_GT(vm.memory_gb, 0.0);
      EXPECT_GT(vm.hourly_usd, 0.0);
    }
  }
}

class ProviderDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(ProviderDecomposition, RatesAreNonNegativeAndFitWell) {
  const auto catalogs = paper_catalogs();
  const auto& catalog = catalogs[static_cast<std::size_t>(GetParam())];
  const CostDecomposition d = decompose(catalog);
  EXPECT_GE(d.vcpu_hourly_usd, 0.0);
  EXPECT_GE(d.gb_hourly_usd, 0.0);
  EXPECT_GT(d.gb_hourly_usd, 0.0) << "memory must carry some of the price";
  EXPECT_GT(d.r_squared, 0.95) << catalog.provider
                               << ": linear model should fit price sheets";
}

INSTANTIATE_TEST_SUITE_P(AllProviders, ProviderDecomposition,
                         ::testing::Values(0, 1, 2));

TEST(Decomposition, RecoversSyntheticRates) {
  VmCatalog synth{"synth",
                  "family",
                  {
                      {"a", 2, 10, 2 * 0.03 + 10 * 0.005, true},
                      {"b", 8, 20, 8 * 0.03 + 20 * 0.005, true},
                      {"c", 16, 100, 16 * 0.03 + 100 * 0.005, true},
                  }};
  const CostDecomposition d = decompose(synth);
  EXPECT_NEAR(d.vcpu_hourly_usd, 0.03, 1e-9);
  EXPECT_NEAR(d.gb_hourly_usd, 0.005, 1e-9);
  EXPECT_NEAR(d.r_squared, 1.0, 1e-9);
  EXPECT_FALSE(d.clamped_nonnegative);
}

TEST(Decomposition, NegativeRateGetsClampedAndRefit) {
  // A price sheet where memory is anti-correlated with price would drive
  // the memory rate negative; the fit must clamp and re-solve.
  // price = 1.0 * vcpus - 0.02 * memory: the unconstrained fit recovers a
  // negative memory rate, which the decomposition clamps and re-fits with
  // memory pinned to zero (C = sum(v*p)/sum(v^2) = 312/336).
  VmCatalog weird{"weird",
                  "family",
                  {
                      {"a", 4, 100, 2.0, true},
                      {"b", 8, 50, 7.0, true},
                      {"c", 16, 25, 15.5, true},
                  }};
  const CostDecomposition d = decompose(weird);
  EXPECT_TRUE(d.clamped_nonnegative);
  EXPECT_DOUBLE_EQ(d.gb_hourly_usd, 0.0);
  EXPECT_NEAR(d.vcpu_hourly_usd, 312.0 / 336.0, 1e-9);
}

TEST(MemoryFraction, ClampedToUnitInterval) {
  CostDecomposition d;
  d.gb_hourly_usd = 1.0;
  const VmInstance vm{"x", 1, 100, 10.0, true};
  EXPECT_DOUBLE_EQ(memory_fraction(vm, d), 1.0);  // 100 > 10 -> clamp
  d.gb_hourly_usd = 0.05;
  EXPECT_DOUBLE_EQ(memory_fraction(vm, d), 0.5);
}

TEST(Figure1, MemoryDominatesMemoryOptimizedVmCost) {
  const auto shares = figure1_shares(paper_catalogs());
  ASSERT_GE(shares.size(), 10u);
  double lo = 1.0;
  double hi = 0.0;
  std::size_t in_band = 0;
  for (const auto& s : shares) {
    EXPECT_GE(s.fraction, 0.0);
    EXPECT_LE(s.fraction, 1.0);
    lo = std::min(lo, s.fraction);
    hi = std::max(hi, s.fraction);
    if (s.fraction >= 0.55 && s.fraction <= 0.9) ++in_band;
  }
  // The paper's headline: memory is roughly 60-85% of these VMs' cost.
  EXPECT_GE(lo, 0.4);
  EXPECT_GE(hi, 0.7);
  EXPECT_GE(static_cast<double>(in_band) / static_cast<double>(shares.size()),
            0.6);
}

TEST(Figure1, OnlyMemoryOptimizedInstancesReported) {
  const auto shares = figure1_shares(paper_catalogs());
  for (const auto& s : shares) {
    EXPECT_EQ(s.instance.find("cache.m5"), std::string::npos)
        << "m5 instances condition the fit but are not Fig 1 bars";
  }
}

}  // namespace
}  // namespace mnemo::pricing
