#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "serve/server.hpp"

namespace mnemo::serve {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(MNEMO_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The end-to-end transcript contract: replaying the canned request
/// stream produces the checked-in response bytes — at any worker count.
/// Responses are emitted in arrival order, so concurrency must never
/// show up in the transcript.
class ServeGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServeGolden, TranscriptIsByteStable) {
  ServeOptions options;
  options.threads = GetParam();
  Server server(std::move(options));

  std::istringstream in(read_fixture("serve_transcript.in"));
  std::ostringstream out;
  server.serve_stream(in, out);

  EXPECT_EQ(out.str(), read_fixture("serve_transcript.out"));
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeGolden,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mnemo::serve
