#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/status.hpp"

namespace mnemo::serve {
namespace {

JsonValue parse(std::string_view text) { return json_parse(text); }

/// The 1-based byte position a parse of `text` fails at, or 0 when it
/// parses cleanly.
std::size_t fail_pos(std::string_view text, const JsonLimits& limits = {}) {
  try {
    (void)json_parse(text, limits);
    return 0;
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.file(), "request");
    return e.line();
  }
}

TEST(ServeJson, ParsesScalars) {
  EXPECT_EQ(parse("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse("true").boolean);
  EXPECT_FALSE(parse("false").boolean);
  EXPECT_EQ(parse("\"hi\"").string, "hi");
  EXPECT_DOUBLE_EQ(parse("2.5").number, 2.5);
}

TEST(ServeJson, IntegersKeepTheExact64BitValue) {
  const JsonValue v = parse("18446744073709551615");  // 2^64 - 1
  ASSERT_TRUE(v.integral);
  EXPECT_FALSE(v.negative);
  EXPECT_EQ(v.magnitude, 18446744073709551615ULL);

  const JsonValue neg = parse("-7");
  ASSERT_TRUE(neg.integral);
  EXPECT_TRUE(neg.negative);
  EXPECT_EQ(neg.magnitude, 7u);

  EXPECT_FALSE(parse("1.5").integral);
  EXPECT_FALSE(parse("1e3").integral);
}

TEST(ServeJson, ObjectsKeepMemberOrderAndPositions) {
  const JsonValue v = parse(R"({"a":1,"b":"x"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.object[0].key, "a");
  EXPECT_EQ(v.object[0].pos, 2u);  // the '"' of "a" is byte 2, 1-based
  EXPECT_EQ(v.object[1].key, "b");
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_EQ(v.find("b")->value.string, "x");
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(ServeJson, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("\u0041\u00e9")").string, "A\xc3\xa9");
}

TEST(ServeJson, QuoteRoundTripsThroughParse) {
  const std::string nasty = "line\nwith \"quotes\", tab\t, and \x01 ctrl";
  EXPECT_EQ(parse(json_quote(nasty)).string, nasty);
}

TEST(ServeJson, NumberRoundTripsThroughParse) {
  for (const double d : {0.2, 0.1, 1.0, 123456.789, 1e-9}) {
    EXPECT_DOUBLE_EQ(parse(json_number(d)).number, d) << json_number(d);
  }
}

TEST(ServeJson, DuplicateKeysAreRejectedAtTheDuplicatePosition) {
  //                 123456789012345
  EXPECT_EQ(fail_pos(R"({"a":1,"a":2})"), 8u);
}

TEST(ServeJson, TrailingBytesAreRejected) {
  EXPECT_EQ(fail_pos("{} {}"), 4u);
  EXPECT_EQ(fail_pos("1 2"), 3u);
}

TEST(ServeJson, TruncationsAtEveryPrefixAreTypedErrorsNotCrashes) {
  const std::string doc =
      R"({"id":"r-1","op":"advise","keys":150,"nested":{"x":[1,2,"\u0041"]}})";
  for (std::size_t n = 0; n < doc.size(); ++n) {
    EXPECT_NE(fail_pos(doc.substr(0, n)), 0u) << "prefix length " << n;
  }
  EXPECT_EQ(fail_pos(doc), 0u);  // the full document parses
}

TEST(ServeJson, GarbageBytesAreTypedErrors) {
  for (const std::string_view bad :
       {"", "  ", "{", "}", "[", "\"", "tru", "nul", "-", "1.", "1e",
        "{\"a\"}", "{\"a\":}", "{\"a\":1,}", "[1,]", "\"\\q\"", "\"\\u12g4\"",
        "\"\\ud800\"", "{1:2}", "\x01", "{\"a\"\n:1}x"}) {
    EXPECT_NE(fail_pos(bad), 0u) << '"' << bad << '"';
  }
}

TEST(ServeJson, OversizedInputIsRefusedUpFront) {
  JsonLimits limits;
  limits.max_input = 8;
  EXPECT_NE(fail_pos("\"123456789\"", limits), 0u);
  EXPECT_EQ(fail_pos("\"1234\"", limits), 0u);
}

TEST(ServeJson, OversizedStringIsRefused) {
  JsonLimits limits;
  limits.max_string = 4;
  EXPECT_NE(fail_pos("\"12345678\"", limits), 0u);
  EXPECT_EQ(fail_pos("\"1234\"", limits), 0u);
}

TEST(ServeJson, OverDeepNestingIsRefused) {
  JsonLimits limits;
  limits.max_depth = 4;
  EXPECT_NE(fail_pos("[[[[[[1]]]]]]", limits), 0u);
  EXPECT_EQ(fail_pos("[[[1]]]", limits), 0u);
}

TEST(ServeJson, TooManyMembersIsRefused) {
  JsonLimits limits;
  limits.max_members = 2;
  EXPECT_NE(fail_pos(R"({"a":1,"b":2,"c":3})", limits), 0u);
  EXPECT_EQ(fail_pos(R"({"a":1,"b":2})", limits), 0u);
  EXPECT_NE(fail_pos("[1,2,3]", limits), 0u);
}

TEST(ServeJson, IntegerOverflowIsATypedError) {
  EXPECT_NE(fail_pos("18446744073709551616"), 0u);  // 2^64
  EXPECT_NE(fail_pos("1e999"), 0u);
}

}  // namespace
}  // namespace mnemo::serve
