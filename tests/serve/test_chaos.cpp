// Chaos harness (tentpole layer 3): deterministic fault injection at the
// I/O boundary — injected write failures, torn writes, slow cells,
// client disconnects, SIGTERM — proving the consultant service degrades
// gracefully: every request settles with a typed answer, damaged caches
// degrade to cache misses, and answers stay bit-identical to the CLI.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "core/campaign.hpp"
#include "faultinject/io_fault.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace mnemo::serve {
namespace {

namespace fs = std::filesystem;

Request small_advise(std::string id) {
  Request req;
  req.id = std::move(id);
  req.op = RequestOp::kAdvise;
  req.keys = 150;
  req.requests = 1500;
  req.repeats = 1;
  return req;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// An output stream whose sink dies permanently after `fail_after`
/// characters — a client that hung up mid-response.
class DyingSinkBuf : public std::streambuf {
 public:
  explicit DyingSinkBuf(std::size_t fail_after) : budget_(fail_after) {}

 protected:
  int_type overflow(int_type c) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    return traits_type::not_eof(c);
  }

 private:
  std::size_t budget_;
};

TEST(ServeChaos, InjectedWriteFailuresNeverChangeTheAnswer) {
  // Every artifact save fails (ENOSPC-style); the cache is best-effort,
  // so the response must still be the exact uncached answer.
  const fs::path dir = fresh_dir("mnemo_chaos_write_fail");
  Response clean;
  {
    Server reference(ServeOptions{});
    clean = reference.handle(small_advise("ref"));
    ASSERT_TRUE(clean.ok);
  }

  faultinject::IoFaultPlan plan;
  plan.write_fail_rate = 1.0;
  faultinject::ScopedIoFaults chaos(plan);
  ServeOptions options;
  options.cache_dir = dir.string();
  Server server(std::move(options));
  const Response under_chaos = server.handle(small_advise("chaos"));
  ASSERT_TRUE(under_chaos.ok) << under_chaos.error_message;
  EXPECT_EQ(under_chaos.output, clean.output);
  EXPECT_GT(chaos.injector().stats().write_failures, 0u);

  // Nothing valid was persisted: the directory holds no artifacts.
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      EXPECT_NE(e.path().extension().string(), ".mna") << e.path();
    }
  }
  fs::remove_all(dir);
}

TEST(ServeChaos, TornWritesLeaveOnlyLitterAndAWarmRunRecomputes) {
  const fs::path dir = fresh_dir("mnemo_chaos_torn");
  std::string cold_output;
  {
    faultinject::IoFaultPlan plan;
    plan.torn_write_rate = 1.0;
    plan.torn_fraction = 0.3;
    faultinject::ScopedIoFaults chaos(plan);
    ServeOptions options;
    options.cache_dir = dir.string();
    Server server(std::move(options));
    const Response resp = server.handle(small_advise("cold"));
    ASSERT_TRUE(resp.ok) << resp.error_message;
    cold_output = resp.output;
    EXPECT_GT(chaos.injector().stats().torn_writes, 0u);
  }
  // The atomic-write discipline held even under chaos: torn temps, but
  // not one torn *artifact* — the rename simply never happened.
  std::size_t temps = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    EXPECT_NE(name.find(".tmp."), std::string::npos) << name;
    ++temps;
  }
  EXPECT_GT(temps, 0u);

  // Chaos gone: a warm server finds an empty cache, replays the campaign
  // (a torn cache degrades to cold, never to a wrong answer) and lands on
  // the identical output.
  const std::size_t before = core::campaign_totals().cells;
  ServeOptions options;
  options.cache_dir = dir.string();
  Server warm(std::move(options));
  const Response resp = warm.handle(small_advise("warm"));
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.output, cold_output);
  EXPECT_GT(core::campaign_totals().cells, before);
  fs::remove_all(dir);
}

TEST(ServeChaos, CliFsckQuarantinesChaosDamageExactlyOnce) {
  // End-to-end acceptance: damage a populated cache the way crashes do
  // (torn final file + dead-writer temp), then drive `mnemo fsck` like an
  // operator would.
  const fs::path dir = fresh_dir("mnemo_chaos_fsck_cli");
  {
    ServeOptions options;
    options.cache_dir = dir.string();
    Server server(std::move(options));
    ASSERT_TRUE(server.handle(small_advise("seed")).ok);
  }
  std::vector<fs::path> artifacts;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".mna") artifacts.push_back(e.path());
  }
  ASSERT_GE(artifacts.size(), 2u);
  fs::resize_file(artifacts[0], fs::file_size(artifacts[0]) / 2);
  std::ofstream(dir / "measure-feed.mna.tmp.1073741824.0",
                std::ios::binary)
      << "half";  // pid 2^30: no such process

  // Dry run: reports damage, exit 1, touches nothing.
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(cli::run({"fsck", "--cache-dir", dir.string(), "--dry-run"},
                     out, err),
            1);
  EXPECT_NE(out.str().find("truncated frame"), std::string::npos);
  EXPECT_TRUE(fs::exists(artifacts[0]));

  // Repair run: quarantines the torn artifact, reaps the orphan, exit 0.
  out.str("");
  EXPECT_EQ(cli::run({"fsck", "--cache-dir", dir.string()}, out, err), 0);
  EXPECT_NE(out.str().find("1 quarantined"), std::string::npos);
  EXPECT_NE(out.str().find("1 temp files reaped"), std::string::npos);
  EXPECT_FALSE(fs::exists(artifacts[0]));
  EXPECT_TRUE(
      fs::exists(dir / "quarantine" / artifacts[0].filename().string()));

  // Idempotent: a second pass finds a clean directory.
  out.str("");
  EXPECT_EQ(cli::run({"fsck", "--cache-dir", dir.string(), "--dry-run"},
                     out, err),
            0);
  EXPECT_NE(out.str().find("0 quarantined"), std::string::npos);

  // Usage error without a directory.
  EXPECT_EQ(cli::run({"fsck"}, out, err), 2);
  fs::remove_all(dir);
}

TEST(ServeChaos, ServerStartupFsckHealsADamagedCache) {
  const fs::path dir = fresh_dir("mnemo_chaos_startup_fsck");
  std::string clean_output;
  {
    ServeOptions options;
    options.cache_dir = dir.string();
    Server server(std::move(options));
    const Response resp = server.handle(small_advise("seed"));
    ASSERT_TRUE(resp.ok);
    clean_output = resp.output;
  }
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".mna") {
      fs::resize_file(e.path(), 2);  // every artifact torn
    }
  }
  ServeOptions options;
  options.cache_dir = dir.string();
  Server healed(std::move(options));  // fsck_on_start quarantines the damage
  const Response resp = healed.handle(small_advise("after"));
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_EQ(resp.output, clean_output);
  EXPECT_TRUE(fs::exists(dir / "quarantine"));
  fs::remove_all(dir);
}

TEST(ServeChaos, ClientDisconnectIsCountedAndServiceContinues) {
  ServeOptions options;
  options.threads = 2;
  Server server(std::move(options));
  std::istringstream in(small_advise("a").to_json_line() + "\n" +
                        small_advise("b").to_json_line() + "\n" +
                        small_advise("c").to_json_line() + "\n");
  DyingSinkBuf dead(0);  // client vanishes before the first byte lands
  std::ostream sink(&dead);
  server.serve_stream(in, sink);

  // Every admitted request still completed (memo/stats updated); the
  // vanished client is one counted disconnect, not three.
  EXPECT_EQ(server.stats().requests, 3u);
  EXPECT_EQ(server.stats().ok, 3u);
  EXPECT_EQ(server.stats().disconnects, 1u);

  // The server object is still healthy for the next client. One lead paid
  // for the campaign; everyone else got a free answer (with two workers a
  // duplicate may join the in-flight lease rather than memo-hit later).
  const Response resp = server.handle(small_advise("next"));
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(server.stats().measure_leads, 1u);
  EXPECT_EQ(server.stats().single_flight_joins +
                server.stats().measure_memo_hits,
            3u);
}

TEST(ServeChaos, MixedDeadlinesUnderFullChaosAllSettleTyped) {
  // The TSan/ASan proving ground: slow cells + failing writes + a mix of
  // hair-trigger and generous deadlines, all in flight at once. Graceful
  // degradation means every future settles with ok or a typed error —
  // no hangs, no crashes, no untyped failures.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 0.5;
  plan.slow_cell_ms = 10.0;
  plan.write_fail_rate = 0.5;
  faultinject::ScopedIoFaults chaos(plan);

  const fs::path dir = fresh_dir("mnemo_chaos_mixed");
  ServeOptions options;
  options.threads = 4;
  options.cache_dir = dir.string();
  Server server(std::move(options));

  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 12; ++i) {
    // Two-step concat: GCC 12's -Wrestrict false positive (PR105651)
    // fires on `"m" + std::to_string(i)` at -O2.
    std::string id = "m";
    id += std::to_string(i);
    Request req = small_advise(id);
    req.seed = static_cast<std::uint64_t>(1 + i % 3);  // 3 distinct keys
    req.deadline_ms = (i % 2 == 0) ? 1 : 600'000;
    futures.push_back(server.submit_line(req.to_json_line()));
  }
  std::size_t ok = 0;
  std::size_t deadline = 0;
  for (std::future<std::string>& f : futures) {
    const JsonValue v = json_parse(f.get());
    if (v.find("ok")->value.boolean) {
      ++ok;
    } else {
      EXPECT_EQ(v.find("error")->value.find("code")->value.string,
                "deadline_exceeded");
      ++deadline;
    }
  }
  EXPECT_EQ(ok + deadline, 12u);
  EXPECT_EQ(server.stats().deadline_hits, deadline);
  // The generous-deadline half always completes.
  EXPECT_GE(ok, 6u);
  fs::remove_all(dir);
}

/// Connect to a Unix socket, retrying until the server binds it.
int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    line += c;
  }
  return line;
}

TEST(ServeChaos, SigtermDrainsTheSocketServerAndPrintsTheLedger) {
  // Satellite (b): SIGTERM against a live `mnemo serve --socket` answers
  // the in-flight client, prints the stats ledger and exits 0. raise()
  // exercises the real signal handler installed by cmd_serve.
  const fs::path sock =
      fs::path(testing::TempDir()) / "mnemo_chaos_sigterm.sock";
  fs::remove(sock);

  std::ostringstream out;
  std::ostringstream err;
  int exit_code = -1;
  std::thread serve_thread([&] {
    exit_code = cli::run({"serve", "--socket", sock.string()}, out, err);
  });

  const int fd = connect_client(sock.string());
  ASSERT_GE(fd, 0);
  const std::string line = small_advise("pre-sigterm").to_json_line() + "\n";
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  const std::string resp = read_line(fd);
  EXPECT_TRUE(json_parse(resp).find("ok")->value.boolean) << resp;

  ::raise(SIGTERM);
  serve_thread.join();
  ::close(fd);

  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(err.str().find("requests"), std::string::npos)
      << "signal-driven shutdown must print the ledger:\n"
      << err.str();
  EXPECT_FALSE(fs::exists(sock));  // socket file unlinked on the way out
}

}  // namespace
}  // namespace mnemo::serve
