#include <gtest/gtest.h>

#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace mnemo::serve {
namespace {

/// The stress workload: 24 requests from 8 client threads over 3 distinct
/// measure keys (workload size / store variations), with duplicates and
/// per-duplicate SLO variations (identical measure key, different advise
/// question). Caching is off, so the only dedup layer is single-flight —
/// the property under test.
std::vector<Request> stress_requests() {
  std::vector<Request> reqs;
  for (int round = 0; round < 8; ++round) {
    for (int variant = 0; variant < 3; ++variant) {
      Request req;
      // Built up in place: the one-expression concatenation trips GCC
      // 12's -Wrestrict false positive (PR105651) at -O2.
      req.id = "r";
      req.id += std::to_string(round);
      req.id += '-';
      req.id += std::to_string(variant);
      req.op = RequestOp::kAdvise;
      req.repeats = 1;
      switch (variant) {
        case 0:
          req.keys = 150;
          req.requests = 1500;
          break;
        case 1:
          req.keys = 120;
          req.requests = 1200;
          break;
        default:
          req.keys = 150;
          req.requests = 1500;
          req.store = "cachet";
          break;
      }
      // Different SLO per round: same measure key, different verdict —
      // joins must still produce the right per-request answer.
      req.slo = 0.05 + 0.01 * round;
      reqs.push_back(std::move(req));
    }
  }
  return reqs;
}

TEST(ServeStress, EightClientsOneReplayPerDistinctKeyBitIdentical) {
  const std::vector<Request> requests = stress_requests();

  // Sequential reference: one worker, requests in order. Records the
  // expected response line per id and the campaign cost of covering every
  // distinct measure key exactly once.
  std::map<std::string, std::string> expected;
  const std::size_t before_seq = core::campaign_totals().cells;
  {
    ServeOptions options;
    options.threads = 1;
    options.queue_capacity = requests.size();
    Server sequential(std::move(options));
    for (const Request& req : requests) {
      expected[req.id] = sequential.handle(req).to_json_line();
    }
    EXPECT_EQ(sequential.stats().measure_leads, 3u);
  }
  const std::size_t distinct_cells =
      core::campaign_totals().cells - before_seq;
  ASSERT_GT(distinct_cells, 0u);

  // Concurrent run: 8 client threads submitting their slice in parallel.
  const std::size_t before_conc = core::campaign_totals().cells;
  ServeOptions options;
  options.threads = 8;
  options.queue_capacity = requests.size();
  Server server(std::move(options));

  std::vector<std::future<std::string>> responses(requests.size());
  {
    std::vector<std::thread> clients;
    clients.reserve(8);
    for (std::size_t c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < requests.size(); i += 8) {
          responses[i] = server.submit_line(requests[i].to_json_line());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].valid());
    EXPECT_EQ(responses[i].get(), expected[requests[i].id])
        << requests[i].id;
  }

  // Exactly one emulator replay per distinct measure key, despite 8
  // concurrent duplicates of each.
  EXPECT_EQ(core::campaign_totals().cells - before_conc, distinct_cells);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.measure_leads, 3u);
  EXPECT_EQ(stats.single_flight_joins + stats.measure_memo_hits,
            requests.size() - 3u);
  EXPECT_EQ(stats.requests, requests.size());
  EXPECT_EQ(stats.ok, requests.size());
  EXPECT_EQ(stats.overloaded, 0u);
}

}  // namespace
}  // namespace mnemo::serve
