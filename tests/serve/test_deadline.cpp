// Deadline + cancellation behavior of the serve layer (tentpole
// acceptance: a deadline-exceeded request returns a typed response while
// other requests complete with zero partial artifacts and bit-identical
// answers). Chaos slow cells (faultinject) make campaigns reliably
// outlive short deadlines without real-time guesswork.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "faultinject/io_fault.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/single_flight.hpp"
#include "util/cancel.hpp"

namespace mnemo::serve {
namespace {

namespace fs = std::filesystem;

Request small_advise(std::string id) {
  Request req;
  req.id = std::move(id);
  req.op = RequestOp::kAdvise;
  req.keys = 150;
  req.requests = 1500;
  req.repeats = 1;
  return req;
}

std::string cli_answer(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(cli::run(args, out, err), 0) << err.str();
  std::istringstream lines(out.str());
  std::string line;
  std::string answer;
  while (std::getline(lines, line)) {
    if (line.rfind("campaign cells executed:", 0) == 0) continue;
    answer += line + "\n";
  }
  return answer;
}

TEST(ServeDeadline, ExpiredTokenAnswersTypedDeadlineExceeded) {
  Server server(ServeOptions{});
  util::CancelToken token{util::Deadline::after_ms(0)};
  const Response resp = server.handle(small_advise("late"), &token);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "deadline_exceeded");
  EXPECT_EQ(resp.id, "late");
  EXPECT_EQ(server.stats().deadline_hits, 1u);
  EXPECT_EQ(server.stats().canceled, 0u);
}

TEST(ServeDeadline, ExplicitCancelAnswersTypedCanceled) {
  Server server(ServeOptions{});
  util::CancelToken token;
  token.cancel({util::ErrorCode::kCanceled, "client went away"});
  const Response resp = server.handle(small_advise("gone"), &token);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "canceled");
  EXPECT_EQ(server.stats().canceled, 1u);
  EXPECT_EQ(server.stats().deadline_hits, 0u);
}

TEST(ServeDeadline, CanceledRequestPublishesNothingAndOthersStayIdentical) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "mnemo_deadline_no_partial";
  fs::remove_all(dir);
  ServeOptions options;
  options.cache_dir = dir.string();
  Server server(std::move(options));

  util::CancelToken token{util::Deadline::after_ms(0)};
  EXPECT_EQ(server.handle(small_advise("late"), &token).error_code,
            "deadline_exceeded");
  // Zero partial artifacts: the canceled request reached no save point.
  EXPECT_FALSE(fs::exists(dir) &&
               !fs::is_empty(dir));

  // The same server still answers an undeadlined request with the exact
  // CLI bytes — the canceled flight poisoned no shared state.
  const Response good = server.handle(small_advise("fine"));
  ASSERT_TRUE(good.ok) << good.error_message;
  EXPECT_EQ(good.output,
            cli_answer({"advise", "--workload", "trending", "--keys", "150",
                        "--requests", "1500", "--repeats", "1"}));
  fs::remove_all(dir);
}

TEST(ServeDeadline, RequestDeadlineFieldCutsASlowCampaignShort) {
  // Chaos stalls make every campaign cell take >= 30ms; a 1ms request
  // deadline therefore always lapses mid-campaign. The scheduler's
  // deadline timer cancels the token, the campaign sheds its remaining
  // cells, and the request answers typed — skipped, never killed.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 30.0;
  faultinject::ScopedIoFaults chaos(plan);

  Server server(ServeOptions{});
  Request req = small_advise("rushed");
  req.deadline_ms = 1;
  const std::string line = server.submit_line(req.to_json_line()).get();
  const JsonValue v = json_parse(line);
  EXPECT_FALSE(v.find("ok")->value.boolean);
  EXPECT_EQ(v.find("error")->value.find("code")->value.string,
            "deadline_exceeded");
  EXPECT_EQ(v.find("id")->value.string, "rushed");
  EXPECT_EQ(server.stats().deadline_hits, 1u);
}

TEST(ServeDeadline, ServerDefaultDeadlineAppliesWhenRequestCarriesNone) {
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 30.0;
  faultinject::ScopedIoFaults chaos(plan);

  ServeOptions options;
  options.default_deadline_ms = 1;
  Server server(std::move(options));
  const std::string line =
      server.submit_line(small_advise("default").to_json_line()).get();
  EXPECT_EQ(json_parse(line).find("error")->value.find("code")->value.string,
            "deadline_exceeded");
}

TEST(ServeDeadline, RequestDeadlineOverridesTheServerDefault) {
  // A generous per-request deadline beats a hair-trigger server default:
  // the request completes and matches the CLI bit for bit.
  ServeOptions options;
  options.default_deadline_ms = 1;
  Server server(std::move(options));
  Request req = small_advise("patient");
  req.deadline_ms = 600'000;
  const std::string line = server.submit_line(req.to_json_line()).get();
  const JsonValue v = json_parse(line);
  ASSERT_TRUE(v.find("ok")->value.boolean) << line;
  EXPECT_EQ(server.stats().deadline_hits, 0u);
  EXPECT_EQ(server.stats().ok, 1u);
}

TEST(ServeDeadline, StatsLedgerRendersTheDeadlineRows) {
  Server server(ServeOptions{});
  util::CancelToken token{util::Deadline::after_ms(0)};
  (void)server.handle(small_advise("late"), &token);
  const std::string ledger = server.stats().render();
  EXPECT_NE(ledger.find("deadline exceeded"), std::string::npos);
  EXPECT_NE(ledger.find("canceled"), std::string::npos);
  EXPECT_NE(ledger.find("dropped connections"), std::string::npos);
}

TEST(SingleFlightCancel, CanceledCallerNeverBecomesLeader) {
  MeasureCache cache;
  util::CancelToken token;
  token.cancel({util::ErrorCode::kCanceled, "too late"});
  EXPECT_THROW((void)cache.acquire("key", &token), util::CanceledError);
}

TEST(SingleFlightCancel, MemoHitIsServedEvenWhenCanceled) {
  // Adopting a finished artifact costs nothing, so a canceled caller
  // still gets it — cancellation stops new work, not free answers.
  MeasureCache cache;
  const MeasureCache::Lease leader = cache.acquire("key");
  ASSERT_TRUE(leader.leader);
  cache.publish("key", std::make_shared<core::MeasureArtifact>());

  util::CancelToken token{util::Deadline::after_ms(0)};
  const MeasureCache::Lease hit = cache.acquire("key", &token);
  EXPECT_FALSE(hit.leader);
  EXPECT_FALSE(hit.joined);
  EXPECT_NE(hit.artifact, nullptr);
}

TEST(SingleFlightCancel, CanceledJoinerWakesAndThrowsWhileLeaderFinishes) {
  // The active wake-up path: a joiner blocked on an in-flight leader is
  // notified by the token's cancel callback, throws the typed error, and
  // the leader's flight is untouched — later callers adopt its artifact.
  MeasureCache cache;
  const MeasureCache::Lease leader = cache.acquire("key");
  ASSERT_TRUE(leader.leader);

  util::CancelToken token;
  std::atomic<bool> joined{false};
  std::thread joiner([&] {
    try {
      (void)cache.acquire("key", &token);
      FAIL() << "canceled joiner must throw, not adopt";
    } catch (const util::CanceledError& e) {
      EXPECT_EQ(e.error().code, util::ErrorCode::kCanceled);
    }
    joined = true;
  });
  // Let the joiner reach its wait, then cancel out-of-band (the
  // scheduler's deadline timer does exactly this).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.cancel({util::ErrorCode::kCanceled, "timer"});
  joiner.join();
  ASSERT_TRUE(joined.load());

  cache.publish("key", std::make_shared<core::MeasureArtifact>());
  const MeasureCache::Lease after = cache.acquire("key");
  EXPECT_FALSE(after.leader);
  EXPECT_NE(after.artifact, nullptr);
}

TEST(SingleFlightCancel, DeadlineArmedJoinerWakesWithNoTimerAtAll) {
  // The passive path: the joiner bounds its own sleep with the token's
  // deadline (wait_until), so even with nobody calling cancel() it wakes
  // and throws deadline_exceeded instead of sleeping forever.
  MeasureCache cache;
  const MeasureCache::Lease leader = cache.acquire("key");
  ASSERT_TRUE(leader.leader);

  util::CancelToken token{util::Deadline::after_ms(30)};
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)cache.acquire("key", &token);
    FAIL() << "joiner outlived its deadline";
  } catch (const util::CanceledError& e) {
    EXPECT_EQ(e.error().code, util::ErrorCode::kDeadlineExceeded);
  }
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(waited).count(),
            30);  // woke via its own wait_until, not a test timeout
  cache.abandon("key");
}

}  // namespace
}  // namespace mnemo::serve
