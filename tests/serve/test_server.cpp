#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "core/campaign.hpp"
#include "serve/json.hpp"

namespace mnemo::serve {
namespace {

namespace fs = std::filesystem;

/// The shared small workload: tiny enough for unit-test latency, same
/// flags the CLI pipeline tests use.
Request small_advise(std::string id) {
  Request req;
  req.id = std::move(id);
  req.op = RequestOp::kAdvise;
  req.keys = 150;
  req.requests = 1500;
  req.repeats = 1;
  return req;
}

/// The CLI's answer for the same configuration, minus the presentation
/// lines serve deliberately omits ("campaign cells executed: N" depends
/// on how the run was satisfied, not on the answer).
std::string cli_answer(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(cli::run(args, out, err), 0) << err.str();
  std::istringstream lines(out.str());
  std::string line;
  std::string answer;
  while (std::getline(lines, line)) {
    if (line.rfind("campaign cells executed:", 0) == 0) continue;
    answer += line + "\n";
  }
  return answer;
}

TEST(ServeServer, AdviseResponseIsBitIdenticalToTheCliAnswer) {
  Server server(ServeOptions{});
  const Response resp = server.handle(small_advise("r1"));
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_EQ(resp.output,
            cli_answer({"advise", "--workload", "trending", "--keys", "150",
                        "--requests", "1500", "--repeats", "1"}));
}

TEST(ServeServer, EveryOpAnswersLikeTheCli) {
  Server server(ServeOptions{});
  const std::vector<std::string> base = {"--workload", "trending",  "--keys",
                                         "150",        "--requests", "1500",
                                         "--repeats",  "1"};
  for (const RequestOp op : {RequestOp::kCharacterize, RequestOp::kMeasure,
                             RequestOp::kReport}) {
    Request req = small_advise(std::string("op-") +
                               std::string(to_string(op)));
    req.op = op;
    const Response resp = server.handle(req);
    ASSERT_TRUE(resp.ok) << resp.error_message;
    std::vector<std::string> args = {std::string(to_string(op))};
    args.insert(args.end(), base.begin(), base.end());
    EXPECT_EQ(resp.output, cli_answer(args)) << to_string(op);
  }
}

TEST(ServeServer, ReportResponseCarriesTheCsvArtifact) {
  Server server(ServeOptions{});
  Request req = small_advise("csv");
  req.op = RequestOp::kReport;
  const Response resp = server.handle(req);
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(resp.csv.find("key_id"), std::string::npos);
}

TEST(ServeServer, InvalidWorkloadIsATypedErrorResponse) {
  Server server(ServeOptions{});
  Request req = small_advise("bad");
  req.workload = "no-such-workload";
  const Response resp = server.handle(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "invalid_argument");
  EXPECT_EQ(resp.id, "bad");
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ServeServer, IdenticalRequestsReplayTheCampaignOnce) {
  ServeOptions options;
  options.threads = 1;
  Server server(std::move(options));
  const std::size_t before = core::campaign_totals().cells;
  ASSERT_TRUE(server.handle(small_advise("a")).ok);
  const std::size_t once = core::campaign_totals().cells - before;
  ASSERT_GT(once, 0u);
  ASSERT_TRUE(server.handle(small_advise("b")).ok);
  EXPECT_EQ(core::campaign_totals().cells - before, once);
  EXPECT_EQ(server.stats().measure_leads, 1u);
  EXPECT_EQ(server.stats().measure_memo_hits, 1u);
}

TEST(ServeServer, ZeroCapacityRefusesEverythingWithOverloaded) {
  ServeOptions options;
  options.queue_capacity = 0;
  Server server(std::move(options));
  std::future<std::string> fut =
      server.submit_line(small_advise("r1").to_json_line());
  const std::string line = fut.get();
  const JsonValue v = json_parse(line);
  EXPECT_FALSE(v.find("ok")->value.boolean);
  EXPECT_EQ(v.find("error")->value.find("code")->value.string, "overloaded");
  EXPECT_EQ(v.find("id")->value.string, "r1");  // refusals echo the id
  EXPECT_EQ(server.stats().overloaded, 1u);
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST(ServeServer, FullQueueRefusesTheExcessRequestDeterministically) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ServeOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.on_request = [&](const Request&) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(std::move(options));

  // First request admitted; its worker parks inside on_request, keeping
  // pending == capacity.
  std::future<std::string> first =
      server.submit_line(small_advise("held").to_json_line());
  std::future<std::string> refused =
      server.submit_line(small_advise("extra").to_json_line());
  const JsonValue v = json_parse(refused.get());
  EXPECT_EQ(v.find("error")->value.find("code")->value.string, "overloaded");

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(json_parse(first.get()).find("ok")->value.boolean);
  EXPECT_EQ(server.stats().overloaded, 1u);
  EXPECT_EQ(server.stats().queue_depth_hwm, 1u);
}

TEST(ServeServer, ParseFailuresAnswerImmediatelyAndAreCounted) {
  Server server(ServeOptions{});
  std::future<std::string> fut = server.submit_line("{truncated");
  const JsonValue v = json_parse(fut.get());
  EXPECT_FALSE(v.find("ok")->value.boolean);
  EXPECT_EQ(v.find("error")->value.find("code")->value.string,
            "parse_error");
  EXPECT_GT(v.find("error")->value.find("position")->value.magnitude, 0u);
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(ServeServer, ServeStreamAnswersInArrivalOrderAndDrains) {
  ServeOptions options;
  options.threads = 4;
  Server server(std::move(options));
  std::istringstream in(small_advise("s1").to_json_line() + "\n" +
                        "garbage\n" +
                        "\n" +  // blank lines are skipped, not answered
                        small_advise("s2").to_json_line() + "\r\n" +
                        small_advise("s3").to_json_line() + "\n");
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(lines, line)) {
    ids.push_back(json_parse(line).find("id")->value.string);
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"s1", "", "s2", "s3"}));
  EXPECT_EQ(server.stats().requests, 4u);
  EXPECT_EQ(server.stats().ok, 3u);
}

TEST(ServeServer, StatsOpReportsTheLedger) {
  Server server(ServeOptions{});
  ASSERT_TRUE(server.handle(small_advise("a")).ok);
  Request stats;
  stats.id = "st";
  stats.op = RequestOp::kStats;
  const Response resp = server.handle(stats);
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(resp.output.find("measure leads       1"), std::string::npos);
}

TEST(ServeServer, TimingBlockIsOptInAndCountsTheCampaignCells) {
  Server server(ServeOptions{});
  Request timed = small_advise("timed");
  timed.timing = true;
  const std::string line =
      server.submit_line(timed.to_json_line()).get();
  const JsonValue v = json_parse(line);
  ASSERT_TRUE(v.find("ok")->value.boolean) << line;
  const JsonValue::Member* timing = v.find("timing");
  ASSERT_NE(timing, nullptr) << line;
  EXPECT_GE(timing->value.find("queue_ms")->value.number, 0.0);
  EXPECT_GT(timing->value.find("run_ms")->value.number, 0.0);
  // This request joined nothing: it led its own campaign, so its cell
  // count is the full grid (2 placements x 1 repeat).
  EXPECT_EQ(timing->value.find("cells_run")->value.magnitude, 2u);

  // Off by default: a response carries no timing block (wall-clock
  // numbers would break byte-stable transcripts).
  const std::string plain =
      server.submit_line(small_advise("plain").to_json_line()).get();
  EXPECT_EQ(plain.find("\"timing\""), std::string::npos) << plain;

  // A memo hit runs zero cells — per-request accounting, not a copy of
  // the global counter.
  Request warm = small_advise("warm");
  warm.timing = true;
  const JsonValue w =
      json_parse(server.submit_line(warm.to_json_line()).get());
  EXPECT_EQ(w.find("timing")->value.find("cells_run")->value.magnitude, 0u);

  // The ledger aggregates: cells and times accumulate across requests.
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.cells_run, 2u);
  EXPECT_GT(stats.run_ms_total, 0.0);
  EXPECT_NE(stats.render().find("cells run           2"),
            std::string::npos);
}

TEST(ServeServer, SharedCacheDirWarmsAcrossServerInstances) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "mnemo_serve_shared_cache";
  fs::remove_all(dir);
  ServeOptions options;
  options.cache_dir = dir.string();
  {
    Server cold(options);
    ASSERT_TRUE(cold.handle(small_advise("cold")).ok);
  }
  const std::size_t before = core::campaign_totals().cells;
  {
    Server warm(options);
    const Response resp = warm.handle(small_advise("warm"));
    ASSERT_TRUE(resp.ok);
    // The disk cache satisfied the measure stage: the "lead" replayed
    // nothing.
    EXPECT_EQ(core::campaign_totals().cells, before);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mnemo::serve
