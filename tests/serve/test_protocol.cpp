#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/json.hpp"
#include "util/status.hpp"

namespace mnemo::serve {
namespace {

/// Round-trip property: to_json_line() -> parse_line() reproduces the
/// request exactly, for every op and a spread of field values.
TEST(ServeProtocol, EveryOpRoundTripsExactly) {
  for (const RequestOp op :
       {RequestOp::kCharacterize, RequestOp::kMeasure, RequestOp::kAdvise,
        RequestOp::kReport, RequestOp::kStats}) {
    Request req;
    req.id = "round/trip \"1\"";
    req.op = op;
    req.workload = "social";
    req.keys = 12345;
    req.requests = 67890;
    req.seed = 0xdeadbeefcafef00dULL;  // must not round through double
    req.store = "cachet";
    req.tiered = true;
    req.model = "uniform";
    req.p = 0.35;
    req.slo = 0.07;
    req.repeats = 4;

    const Request back = Request::parse_line(req.to_json_line());
    EXPECT_EQ(back, req) << to_string(op);
  }
}

TEST(ServeProtocol, DefaultsMatchTheCliDefaults) {
  const Request req = Request::parse_line(R"({"id":"r1","op":"advise"})");
  EXPECT_EQ(req.workload, "trending");
  EXPECT_EQ(req.keys, 0u);
  EXPECT_EQ(req.requests, 0u);
  EXPECT_EQ(req.seed, 0u);
  EXPECT_EQ(req.store, "vermilion");
  EXPECT_FALSE(req.tiered);
  EXPECT_EQ(req.model, "size-aware");
  EXPECT_DOUBLE_EQ(req.p, 0.2);
  EXPECT_DOUBLE_EQ(req.slo, 0.1);
  EXPECT_EQ(req.repeats, 2u);
}

std::size_t fail_pos(std::string_view line) {
  try {
    (void)Request::parse_line(line);
    return 0;
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.file(), "request");
    return e.line();
  }
}

TEST(ServeProtocol, MissingIdOrOpIsRejected) {
  EXPECT_NE(fail_pos(R"({"op":"advise"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"","op":"advise"})"), 0u);
  EXPECT_NE(fail_pos("[]"), 0u);
  EXPECT_NE(fail_pos("42"), 0u);
}

TEST(ServeProtocol, UnknownFieldIsRejectedAtItsPosition) {
  const std::string_view line = R"({"id":"r1","op":"advise","zz":1})";
  // The opening '"' of "zz" is byte 26, 1-based.
  EXPECT_EQ(fail_pos(line), 26u);
}

TEST(ServeProtocol, UnknownNamesAreRejected) {
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"frobnicate"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","store":"redis"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","model":"magic"})"), 0u);
}

TEST(ServeProtocol, WrongTypesAreRejected) {
  EXPECT_NE(fail_pos(R"({"id":1,"op":"advise"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","keys":"many"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","keys":1.5})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","keys":-1})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","tiered":"yes"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","p":0})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","slo":-0.1})"), 0u);
}

TEST(ServeProtocol, OutOfRangeSizesAreRejected) {
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","keys":1000001})"), 0u);
  EXPECT_NE(
      fail_pos(R"({"id":"r1","op":"advise","requests":10000001})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","repeats":0})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","repeats":17})"), 0u);
}

TEST(ServeProtocol, DuplicateFieldsAreRejected) {
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","id":"r2"})"), 0u);
  EXPECT_NE(fail_pos(R"({"id":"r1","op":"advise","op":"report"})"), 0u);
}

TEST(ServeProtocol, TruncationAtEveryPrefixIsATypedError) {
  Request req;
  req.id = "prefix-corpus";
  req.seed = 42;
  const std::string line = req.to_json_line();
  for (std::size_t n = 0; n < line.size(); ++n) {
    EXPECT_NE(fail_pos(line.substr(0, n)), 0u) << "prefix length " << n;
  }
  EXPECT_EQ(fail_pos(line), 0u);
}

TEST(ServeProtocol, OversizedStringFieldIsATypedError) {
  const std::string line = R"({"id":")" + std::string(8192, 'x') +
                           R"(","op":"advise"})";
  EXPECT_NE(fail_pos(line), 0u);
}

TEST(ServeProtocol, OkResponseLineShape) {
  Response r;
  r.id = "r1";
  r.op = RequestOp::kAdvise;
  r.ok = true;
  r.output = "line one\nline two\n";
  EXPECT_EQ(r.to_json_line(),
            R"({"id":"r1","op":"advise","ok":true,)"
            R"("output":"line one\nline two\n"})");

  r.op = RequestOp::kReport;
  r.csv = "a,b\n";
  EXPECT_NE(r.to_json_line().find(R"("csv":"a,b\n")"), std::string::npos);
}

TEST(ServeProtocol, ErrorResponsesCarryCodeMessageAndPosition) {
  const Response err = error_response(
      "r9", RequestOp::kMeasure,
      util::Error{util::ErrorCode::kOverloaded, "queue full"});
  EXPECT_EQ(err.to_json_line(),
            R"({"id":"r9","op":"measure","ok":false,)"
            R"("error":{"code":"overloaded","message":"queue full"}})");

  const Response parse_err = parse_error_response(
      util::ParseError("request", 12, "unknown op 'bogus'"));
  const std::string line = parse_err.to_json_line();
  EXPECT_NE(line.find(R"("code":"parse_error")"), std::string::npos);
  EXPECT_NE(line.find(R"("position":12)"), std::string::npos);
  EXPECT_NE(line.find(R"("id":"")"), std::string::npos);
}

/// Every response line is itself a valid JSON document — clients can
/// parse what the server emits with the same parser.
TEST(ServeProtocol, ResponseLinesAreValidJson) {
  Response ok;
  ok.id = "r\"1\"";
  ok.ok = true;
  ok.output = std::string("bytes\twith\nnewlines") + '\x02';
  const JsonValue v = json_parse(ok.to_json_line());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("output")->value.string, ok.output);

  const JsonValue e = json_parse(
      error_response("x", RequestOp::kStats,
                     util::Error{util::ErrorCode::kInvalidArgument, "m\"g"})
          .to_json_line());
  EXPECT_EQ(e.find("error")->value.find("message")->value.string, "m\"g");
}

}  // namespace
}  // namespace mnemo::serve
