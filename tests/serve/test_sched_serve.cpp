// Scheduler-level serve properties (tentpole): a parked single-flight
// joiner occupies no worker thread, so even a one-worker server makes
// progress with joiners outstanding — and a deadline that strikes while
// a joiner is parked produces its typed answer without waiting for the
// leader. Chaos slow cells (faultinject) stretch campaigns so overlap is
// reliable without real-time guesswork.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/io_fault.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace mnemo::serve {
namespace {

Request small_advise(std::string id) {
  Request req;
  req.id = std::move(id);
  req.op = RequestOp::kAdvise;
  req.keys = 150;
  req.requests = 1500;
  req.repeats = 1;
  return req;
}

/// Spin until `count` reaches at least `floor` (the on_request seam
/// signals when a request's driver has started).
void wait_for_at_least(const std::atomic<int>& count, int floor) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < floor &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(count.load(), floor);
}

TEST(ServeSched, ParkedJoinersBlockNoWorkerEvenOnAOneWorkerServer) {
  // One worker, one leader mid-campaign, four identical joiners and the
  // leader all in service at once. If a joiner held the worker while
  // waiting for the leader, this would deadlock: the leader's remaining
  // cells could never run. Completion *is* the zero-blocked-workers
  // property; the ledger then proves the joiners really parked behind
  // the in-flight leader rather than hitting a finished memo.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 20.0;
  faultinject::ScopedIoFaults chaos(plan);

  ServeOptions options;
  options.threads = 1;
  Server server(std::move(options));

  Request lead = small_advise("lead");
  lead.repeats = 4;  // 8 chaos-stalled cells: the leader is busy a while
  std::vector<std::future<std::string>> futures;
  futures.push_back(server.submit_line(lead.to_json_line()));
  for (int i = 0; i < 4; ++i) {
    Request join = small_advise("join" + std::to_string(i));
    join.repeats = 4;  // identical measure key
    futures.push_back(server.submit_line(join.to_json_line()));
  }
  for (std::future<std::string>& f : futures) {
    const std::string line = f.get();
    EXPECT_TRUE(json_parse(line).find("ok")->value.boolean) << line;
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.measure_leads, 1u);
  EXPECT_EQ(stats.single_flight_joins + stats.measure_memo_hits, 4u);
  EXPECT_EQ(stats.ok, 5u);
}

TEST(ServeSched, IndependentRequestCompletesWhileALeaderIsMidCampaign) {
  // Cell-granular sharing: with the big campaign still in flight on the
  // same (single-worker!) scheduler, a request for a *different* key
  // finishes — its cells interleave with the big one's instead of
  // queueing behind the whole request.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 20.0;
  faultinject::ScopedIoFaults chaos(plan);

  std::atomic<int> started{0};
  ServeOptions options;
  options.threads = 1;
  options.on_request = [&](const Request&) { ++started; };
  Server server(std::move(options));

  Request big = small_advise("big");
  big.repeats = 8;  // 16 chaos-stalled cells: ~320ms of campaign
  std::future<std::string> big_future =
      server.submit_line(big.to_json_line());
  wait_for_at_least(started, 1);  // the big request's driver is running
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Request small = small_advise("small");
  small.keys = 120;
  small.requests = 1200;  // distinct measure key
  const std::string small_line =
      server.submit_line(small.to_json_line()).get();
  EXPECT_TRUE(json_parse(small_line).find("ok")->value.boolean)
      << small_line;
  // The small request settled while the big one was still in service —
  // it overtook mid-grid rather than waiting for the campaign to end.
  EXPECT_EQ(big_future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  const std::string big_line = big_future.get();
  EXPECT_TRUE(json_parse(big_line).find("ok")->value.boolean) << big_line;
  EXPECT_EQ(server.stats().measure_leads, 2u);
}

TEST(ServeSched, DeadlineFiresForAParkedJoinerWithoutUnparkingTheLeader) {
  // The joiner parks behind a slow leader and its deadline lapses while
  // parked: the scheduler's timer cancels the token, the registered wake
  // re-submits the joiner, and it answers typed deadline_exceeded — all
  // while the leader keeps running to a successful answer.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 30.0;
  faultinject::ScopedIoFaults chaos(plan);

  std::atomic<int> started{0};
  ServeOptions options;
  options.threads = 2;
  options.on_request = [&](const Request&) { ++started; };
  Server server(std::move(options));

  Request lead = small_advise("lead");
  lead.repeats = 4;  // 8 cells x 30ms: far longer than the deadline
  std::future<std::string> lead_future =
      server.submit_line(lead.to_json_line());
  // Give the leader a head start so it owns the flight before the
  // deadlined request arrives. (Even if the rushed request won the
  // election instead, the assertions below still hold: its campaign
  // would be canceled mid-grid, it would abandon, and the parked "lead"
  // would be promoted to a successful leader.)
  wait_for_at_least(started, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Request rushed = small_advise("rushed");
  rushed.repeats = 4;  // identical measure key -> parks behind the leader
  rushed.deadline_ms = 40;
  const std::string rushed_line =
      server.submit_line(rushed.to_json_line()).get();
  const JsonValue v = json_parse(rushed_line);
  ASSERT_FALSE(v.find("ok")->value.boolean) << rushed_line;
  EXPECT_EQ(v.find("error")->value.find("code")->value.string,
            "deadline_exceeded");

  const std::string lead_line = lead_future.get();
  EXPECT_TRUE(json_parse(lead_line).find("ok")->value.boolean) << lead_line;
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_hits, 1u);
  EXPECT_EQ(stats.measure_leads, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

}  // namespace
}  // namespace mnemo::serve
