# Cache-correctness harness (ctest label: pipeline). Drives the real
# `mnemo` binary the way a user would: a cold `report` into a fresh
# --cache-dir, then a warm one, and fails unless the two outputs are
# byte-identical. A third run with a different SLO must still answer from
# the cached measurement grid (campaign cells executed: 0).
#
# Expects: -DMNEMO_BIN=<path to mnemo> -DWORK_DIR=<scratch dir>

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(CACHE_DIR "${WORK_DIR}/cache")
set(ARGS --workload trending --keys 150 --requests 1500 --repeats 1
    --cache-dir "${CACHE_DIR}")

execute_process(
  COMMAND "${MNEMO_BIN}" report ${ARGS}
  OUTPUT_FILE "${WORK_DIR}/cold.txt"
  RESULT_VARIABLE cold_rc ERROR_VARIABLE cold_err)
if(NOT cold_rc EQUAL 0)
  message(FATAL_ERROR "cold run failed (${cold_rc}): ${cold_err}")
endif()

execute_process(
  COMMAND "${MNEMO_BIN}" report ${ARGS}
  OUTPUT_FILE "${WORK_DIR}/warm.txt"
  RESULT_VARIABLE warm_rc ERROR_VARIABLE warm_err)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm run failed (${warm_rc}): ${warm_err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/cold.txt" "${WORK_DIR}/warm.txt"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "cold and warm `mnemo report` outputs differ — the "
                      "artifact cache changed the answer")
endif()

# Incremental re-run: a new SLO against the warm grid must not replay.
execute_process(
  COMMAND "${MNEMO_BIN}" advise --slo 0.3 ${ARGS}
  OUTPUT_VARIABLE advise_out
  RESULT_VARIABLE advise_rc ERROR_VARIABLE advise_err)
if(NOT advise_rc EQUAL 0)
  message(FATAL_ERROR "warm advise failed (${advise_rc}): ${advise_err}")
endif()
if(NOT advise_out MATCHES "campaign cells executed: 0")
  message(FATAL_ERROR "warm advise replayed the emulator:\n${advise_out}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
