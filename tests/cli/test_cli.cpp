#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace mnemo::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsPrintsHelpAndFails) {
  const CliResult r = run_cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliResult r = run_cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("profile"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliResult r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, WorkloadsListsTableIII) {
  const CliResult r = run_cli({"workloads"});
  EXPECT_EQ(r.code, 0);
  for (const char* name : {"trending", "news_feed", "timeline",
                           "edit_thumbnail", "trending_preview"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, TestbedShowsTableI) {
  const CliResult r = run_cli({"testbed"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("FastMem"), std::string::npos);
  EXPECT_NE(r.out.find("65.7"), std::string::npos);
  EXPECT_NE(r.out.find("238.1"), std::string::npos);
}

TEST(Cli, GenerateProfileDownsampleRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/cli_trace.csv";
  const std::string advice_path = dir + "/cli_advice.csv";
  const std::string down_path = dir + "/cli_down.csv";

  // generate
  CliResult r = run_cli({"generate", "--workload", "trending", "--keys",
                         "300", "--requests", "3000", "--out", trace_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(trace_path));

  // profile the generated trace
  r = run_cli({"profile", "--trace", trace_path, "--repeats", "1", "--out",
               advice_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sweet spot"), std::string::npos);
  const auto rows = util::csv::read_file(advice_path);
  EXPECT_EQ(rows.size(), 301u);  // header + one row per key

  // downsample it
  r = run_cli({"downsample", "--trace", trace_path, "--keep", "0.5",
               "--out", down_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("kept"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(down_path));

  std::filesystem::remove(trace_path);
  std::filesystem::remove(advice_path);
  std::filesystem::remove(down_path);
}

TEST(Cli, ProfileTieredAndModelsWork) {
  const CliResult r = run_cli({"profile", "--workload", "timeline",
                               "--keys", "300", "--requests", "3000",
                               "--tiered", "--model", "uniform",
                               "--repeats", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("tiered ordering"), std::string::npos);
  EXPECT_NE(r.out.find("uniform_delta"), std::string::npos);
}

TEST(Cli, ProfileThreadsAndStatsReportTheCampaign) {
  const CliResult serial = run_cli({"profile", "--workload", "trending",
                                    "--keys", "200", "--requests", "2000",
                                    "--repeats", "1", "--threads", "1"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  const CliResult parallel = run_cli({"profile", "--workload", "trending",
                                      "--keys", "200", "--requests", "2000",
                                      "--repeats", "1", "--threads", "4",
                                      "--stats"});
  ASSERT_EQ(parallel.code, 0) << parallel.err;
  // --stats appends the campaign accounting table...
  EXPECT_NE(parallel.out.find("campaign totals"), std::string::npos);
  EXPECT_NE(parallel.out.find("cells run"), std::string::npos);
  EXPECT_NE(parallel.out.find("speedup vs serial"), std::string::npos);
  // ...and the thread count never changes the advice: everything before
  // the stats table is byte-identical to the serial run's full output.
  const std::size_t cut = parallel.out.find("\n| campaign totals");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_EQ(serial.out, parallel.out.substr(0, cut));
}

TEST(Cli, ProfileRejectsBadStore) {
  const CliResult r = run_cli({"profile", "--store", "redis"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("vermilion"), std::string::npos);
}

TEST(Cli, BadOptionShowsUsage) {
  const CliResult r = run_cli({"profile", "--bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
  EXPECT_NE(r.err.find("--store"), std::string::npos) << "usage shown";
}

TEST(Cli, DownsampleValidatesKeep) {
  const CliResult r = run_cli({"downsample", "--workload", "trending",
                               "--keys", "100", "--requests", "1000",
                               "--keep", "1.5"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, TailsPrintsMixtureEstimates) {
  const CliResult r = run_cli({"tails", "--workload", "trending", "--keys",
                               "300", "--requests", "3000", "--repeats",
                               "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("est p99"), std::string::npos);
}

TEST(Cli, SpecPrintsParsableTemplate) {
  const CliResult r = run_cli({"spec", "--workload", "news_feed"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("distribution = latest"), std::string::npos);
  EXPECT_NE(r.out.find("latest_drift = 0.1"), std::string::npos);
}

TEST(Cli, ProfileFromSpecFile) {
  const std::string dir = ::testing::TempDir();
  const std::string spec_path = dir + "/cli_spec.conf";
  {
    std::ofstream spec(spec_path);
    spec << "name = custom_hotspot\n"
            "distribution = hotspot\n"
            "record_size = photo_caption\n"
            "keys = 200\n"
            "requests = 2000\n";
  }
  const CliResult r =
      run_cli({"profile", "--spec", spec_path, "--repeats", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("custom_hotspot"), std::string::npos);
  std::filesystem::remove(spec_path);
}

TEST(Cli, CompareCoversAllStores) {
  const CliResult r = run_cli({"compare", "--workload", "trending",
                               "--keys", "200", "--requests", "2000",
                               "--repeats", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("vermilion"), std::string::npos);
  EXPECT_NE(r.out.find("cachet"), std::string::npos);
  EXPECT_NE(r.out.find("dynastore"), std::string::npos);
}

TEST(Cli, InspectCharacterizesTheWorkload) {
  const CliResult r = run_cli({"inspect", "--workload", "trending",
                               "--keys", "300", "--requests", "3000"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hot-20% share"), std::string::npos);
  EXPECT_NE(r.out.find("reuse distance p50"), std::string::npos);
  EXPECT_NE(r.out.find("predicted LLC hit rate"), std::string::npos);
}

TEST(Cli, MigrateComparesStrategies) {
  const CliResult r = run_cli({"migrate", "--workload", "news_feed",
                               "--keys", "200", "--requests", "4000",
                               "--epoch", "500", "--background"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("static oracle"), std::string::npos);
  EXPECT_NE(r.out.find("dynamic (predictive)"), std::string::npos);
}

TEST(Cli, MigrateValidatesBudget) {
  const CliResult r = run_cli({"migrate", "--budget", "2.0"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, PlanCoversTheSuite) {
  const CliResult r = run_cli({"plan", "--repeats", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trending"), std::string::npos);
  EXPECT_NE(r.out.find("news_feed"), std::string::npos);
}

TEST(Cli, ProfileWithFaultsDegradesAndPrintsTheLedger) {
  // 20 % poisoned SlowMem lines: the all-SlowMem baseline cannot produce a
  // fault-free measurement, so under the default degrade policy the
  // profile completes (exit 0) with the baselines quarantined and the
  // failure ledger printed.
  const CliResult r = run_cli({"profile", "--workload", "trending",
                               "--keys", "200", "--requests", "2000",
                               "--repeats", "1", "--threads", "2",
                               "--faults", "poison=0.2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("faults: poisoned lines"), std::string::npos);
  EXPECT_NE(r.out.find("policy degrade"), std::string::npos);
  EXPECT_NE(r.out.find("baselines quarantined"), std::string::npos);
  EXPECT_NE(r.out.find("partial results:"), std::string::npos);
  EXPECT_NE(r.out.find("fault_injected"), std::string::npos);
}

TEST(Cli, ProfileAbortPolicyExitsNonzeroNamingTheCell) {
  const CliResult r = run_cli({"profile", "--workload", "trending",
                               "--keys", "200", "--requests", "2000",
                               "--repeats", "1", "--threads", "2",
                               "--faults", "poison=0.2",
                               "--fail-policy", "abort"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("fault policy abort: cell #"), std::string::npos);
  EXPECT_NE(r.err.find("quarantined:"), std::string::npos);
  // The sweep itself still completed; abort only changes the exit status.
  EXPECT_NE(r.out.find("partial results:"), std::string::npos);
}

TEST(Cli, ProfileHarmlessPlanReportsNoQuarantine) {
  // An armed plan that draws no events: full advice comes out, with an
  // explicit all-clear instead of silence.
  const CliResult r = run_cli({"profile", "--workload", "trending",
                               "--keys", "200", "--requests", "2000",
                               "--repeats", "1",
                               "--faults", "transient=1e-9"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sweet spot"), std::string::npos);
  EXPECT_NE(r.out.find("no campaign cells quarantined"), std::string::npos);
}

TEST(Cli, PlanWithFaultsCompletesTheSweepDegraded) {
  const CliResult r = run_cli({"plan", "--repeats", "1",
                               "--faults", "poison=0.2"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Every suite workload still gets its row — quarantined, not missing.
  EXPECT_NE(r.out.find("trending"), std::string::npos);
  EXPECT_NE(r.out.find("news_feed"), std::string::npos);
  EXPECT_NE(r.out.find("quarantined"), std::string::npos);
  EXPECT_NE(r.out.find("partial results:"), std::string::npos);
}

TEST(Cli, PlanAbortPolicyNamesWorkloadAndCell) {
  const CliResult r = run_cli({"plan", "--repeats", "1",
                               "--faults", "poison=0.2",
                               "--fail-policy", "abort"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("fault policy abort: workload"), std::string::npos);
  EXPECT_NE(r.err.find("cell #"), std::string::npos);
}

TEST(Cli, BadFaultSpecFails) {
  const CliResult r = run_cli({"profile", "--workload", "trending",
                               "--keys", "100", "--requests", "1000",
                               "--faults", "bogus=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown key"), std::string::npos);
}

TEST(Cli, MalformedSpecFileExitsTwoWithFileAndLine) {
  const std::string path = ::testing::TempDir() + "/cli_bad_spec.conf";
  {
    std::ofstream spec(path);
    spec << "name = broken\nread_fraction = 1.5\n";
  }
  const CliResult r = run_cli({"profile", "--spec", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("parse error: "), std::string::npos);
  EXPECT_NE(r.err.find(path + ":2:"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, MalformedTraceFileExitsTwoWithFileAndLine) {
  const std::string path = ::testing::TempDir() + "/cli_bad_trace.csv";
  {
    std::ofstream out(path);
    out << "trace,t\nkey_count,2\nsizes,10,10\n0,read\n1,destroy\n";
  }
  const CliResult r = run_cli({"profile", "--trace", path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("parse error: "), std::string::npos);
  EXPECT_NE(r.err.find(path + ":5:"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mnemo::cli
