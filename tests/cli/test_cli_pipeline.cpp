#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

namespace mnemo::cli {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Shared small workload so every invocation stays fast and every test
/// that reuses these flags addresses the same cache entries.
const std::vector<std::string> kWorkload = {"--workload", "trending",
                                            "--keys", "150", "--requests",
                                            "1500", "--repeats", "1"};

std::vector<std::string> with_workload(std::vector<std::string> extra) {
  std::vector<std::string> args = extra;
  args.insert(args.begin() + 1, kWorkload.begin(), kWorkload.end());
  return args;
}

struct PipelineCliTest : ::testing::Test {
  fs::path cache;
  void SetUp() override {
    cache = fs::path(testing::TempDir()) /
            (std::string("mnemo_cli_cache_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(cache);
  }
  void TearDown() override { fs::remove_all(cache); }

  std::vector<std::string> cached(std::vector<std::string> args) const {
    args.push_back("--cache-dir");
    args.push_back(cache.string());
    return args;
  }
};

TEST_F(PipelineCliTest, RunIsByteIdenticalColdAndWarm) {
  const CliResult cold = run_cli(cached(with_workload({"run"})));
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("workload: trending"), std::string::npos);
  EXPECT_NE(cold.out.find("baselines:"), std::string::npos);

  const CliResult warm = run_cli(cached(with_workload({"run"})));
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, cold.out);  // byte-for-byte, not merely similar
  EXPECT_EQ(warm.err, cold.err);
}

TEST_F(PipelineCliTest, RunIsByteIdenticalAtAnyThreadCount) {
  // The one-shot path on the task scheduler: --threads only changes
  // wall clock, never a byte of the answer. No cache dir, so every
  // invocation really recomputes its campaign.
  const CliResult serial =
      run_cli(with_workload({"run", "--threads", "1"}));
  ASSERT_EQ(serial.code, 0) << serial.err;
  for (const char* threads : {"2", "8"}) {
    const CliResult parallel =
        run_cli(with_workload({"run", "--threads", threads}));
    ASSERT_EQ(parallel.code, 0) << parallel.err;
    EXPECT_EQ(parallel.out, serial.out) << "--threads " << threads;
  }
}

TEST_F(PipelineCliTest, ReportMatchesRunAndStaysStable) {
  const CliResult run1 = run_cli(cached(with_workload({"report"})));
  ASSERT_EQ(run1.code, 0) << run1.err;
  const CliResult run2 = run_cli(cached(with_workload({"report"})));
  ASSERT_EQ(run2.code, 0) << run2.err;
  EXPECT_EQ(run1.out, run2.out);
}

TEST_F(PipelineCliTest, MeasureReportsCellsThenAdviseRunsZero) {
  const CliResult measure = run_cli(cached(with_workload({"measure"})));
  ASSERT_EQ(measure.code, 0) << measure.err;
  EXPECT_NE(measure.out.find("campaign cells executed: "), std::string::npos);
  EXPECT_EQ(measure.out.find("campaign cells executed: 0"),
            std::string::npos);  // cold run really measured

  // A different SLO against the warm grid: zero emulator replays.
  const CliResult advise =
      run_cli(cached(with_workload({"advise", "--slo", "0.3"})));
  ASSERT_EQ(advise.code, 0) << advise.err;
  EXPECT_NE(advise.out.find("campaign cells executed: 0"), std::string::npos);
  EXPECT_NE(advise.out.find("baselines:"), std::string::npos);
}

TEST_F(PipelineCliTest, NoCacheForcesRecomputation) {
  ASSERT_EQ(run_cli(cached(with_workload({"measure"}))).code, 0);
  const CliResult bypass =
      run_cli(cached(with_workload({"measure", "--no-cache"})));
  ASSERT_EQ(bypass.code, 0) << bypass.err;
  EXPECT_EQ(bypass.out.find("campaign cells executed: 0"), std::string::npos);
}

TEST_F(PipelineCliTest, ExplainCacheShowsStageDecisions) {
  ASSERT_EQ(run_cli(cached(with_workload({"run"}))).code, 0);
  const CliResult explain =
      run_cli(cached(with_workload({"advise", "--explain-cache"})));
  ASSERT_EQ(explain.code, 0) << explain.err;
  EXPECT_NE(explain.out.find("cache: " + cache.string()), std::string::npos);
  EXPECT_NE(explain.out.find("measure"), std::string::npos);
  EXPECT_NE(explain.out.find("cached"), std::string::npos);
}

TEST_F(PipelineCliTest, CharacterizeSummarizesTheOrdering) {
  const CliResult r = run_cli(with_workload({"characterize"}));
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("workload: trending"), std::string::npos);
  EXPECT_NE(r.out.find("ordering: touch_order"), std::string::npos);
  EXPECT_NE(r.out.find("front of the order:"), std::string::npos);
}

TEST_F(PipelineCliTest, CacheDirectoryHoldsOneFilePerStage) {
  ASSERT_EQ(run_cli(cached(with_workload({"run"}))).code, 0);
  std::size_t artifacts = 0;
  for (const auto& e : fs::directory_iterator(cache)) {
    if (e.path().filename() == "journal.mnj") continue;  // write journal
    EXPECT_EQ(e.path().extension().string(), ".mna") << e.path();
    ++artifacts;
  }
  EXPECT_EQ(artifacts, 5u);  // characterize, measure, estimate, advise, report
}

TEST_F(PipelineCliTest, CorruptedCacheIsRepairedNotFatal) {
  ASSERT_EQ(run_cli(cached(with_workload({"report"}))).code, 0);
  const CliResult clean = run_cli(cached(with_workload({"report"})));
  for (const auto& e : fs::directory_iterator(cache)) {
    fs::resize_file(e.path(), 2);
  }
  const CliResult repaired = run_cli(cached(with_workload({"report"})));
  ASSERT_EQ(repaired.code, 0) << repaired.err;
  EXPECT_EQ(repaired.out, clean.out);
}

TEST_F(PipelineCliTest, PipelineWithoutCacheDirStillWorks) {
  const CliResult r = run_cli(with_workload({"advise"}));
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("campaign cells executed: "), std::string::npos);
}

TEST(PipelineCli, UnknownCommandSuggestsNearestMatch) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run({"advize"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown command: advize"), std::string::npos);
  EXPECT_NE(err.str().find("did you mean advise?"), std::string::npos);
}

TEST(PipelineCli, UnknownFlagSuggestsAndExitsTwo) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run({"run", "--cache-dri", "/tmp/x"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown option --cache-dri"), std::string::npos);
  EXPECT_NE(err.str().find("did you mean --cache-dir?"), std::string::npos);
}

TEST(PipelineCli, DuplicateFlagExitsTwo) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run({"run", "--slo", "0.1", "--slo", "0.2"}, out, err), 2);
  EXPECT_NE(err.str().find("duplicate option --slo"), std::string::npos);
}

TEST(PipelineCli, HelpListsThePipelineCommands) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run({"help"}, out, err), 0);
  for (const char* cmd : {"run", "characterize", "measure", "advise",
                          "report", "--cache-dir"}) {
    EXPECT_NE(out.str().find(cmd), std::string::npos) << cmd;
  }
}

}  // namespace
}  // namespace mnemo::cli
