#include "hybridmem/llc_model.hpp"

#include <gtest/gtest.h>

namespace mnemo::hybridmem {
namespace {

LlcModel make_llc(std::uint64_t capacity = 1000) {
  return LlcModel(capacity, 12.0, 100.0, /*bypass_fraction=*/0.5);
}

TEST(Llc, FirstAccessMissesSecondHits) {
  LlcModel llc = make_llc();
  EXPECT_FALSE(llc.access(1, 100));
  EXPECT_TRUE(llc.access(1, 100));
  EXPECT_EQ(llc.hits(), 1u);
  EXPECT_EQ(llc.misses(), 1u);
  EXPECT_DOUBLE_EQ(llc.hit_rate(), 0.5);
}

TEST(Llc, EvictsLeastRecentlyUsed) {
  LlcModel llc = make_llc(1000);
  EXPECT_FALSE(llc.access(1, 400));
  EXPECT_FALSE(llc.access(2, 400));
  EXPECT_TRUE(llc.access(1, 400));  // 1 is now MRU
  EXPECT_FALSE(llc.access(3, 400));  // evicts 2 (LRU), not 1
  EXPECT_TRUE(llc.access(1, 400));
  EXPECT_FALSE(llc.access(2, 400));  // 2 was evicted
}

TEST(Llc, LargeObjectsBypass) {
  LlcModel llc = make_llc(1000);  // bypass threshold = 500
  EXPECT_FALSE(llc.access(1, 501));
  EXPECT_FALSE(llc.access(1, 501)) << "bypassing objects never install";
  EXPECT_EQ(llc.used(), 0u);
  // At the threshold the object still caches.
  EXPECT_FALSE(llc.access(2, 500));
  EXPECT_TRUE(llc.access(2, 500));
}

TEST(Llc, ResizeOnHitUpdatesAccounting) {
  LlcModel llc = make_llc(1000);
  llc.access(1, 100);
  EXPECT_EQ(llc.used(), 100u);
  EXPECT_TRUE(llc.access(1, 300));  // same object, bigger now
  EXPECT_EQ(llc.used(), 300u);
}

TEST(Llc, InvalidateRemovesObject) {
  LlcModel llc = make_llc();
  llc.access(1, 100);
  llc.invalidate(1);
  EXPECT_EQ(llc.used(), 0u);
  EXPECT_FALSE(llc.access(1, 100));
  llc.invalidate(999);  // unknown id is a no-op
}

TEST(Llc, ClearForgetsEverything) {
  LlcModel llc = make_llc();
  llc.access(1, 100);
  llc.access(2, 100);
  llc.clear();
  EXPECT_EQ(llc.used(), 0u);
  EXPECT_FALSE(llc.access(1, 100));
  EXPECT_FALSE(llc.access(2, 100));
}

TEST(Llc, HitCostScalesWithBytes) {
  const LlcModel llc = make_llc();
  EXPECT_DOUBLE_EQ(llc.hit_ns(0), 12.0);
  EXPECT_DOUBLE_EQ(llc.hit_ns(1000), 12.0 + 10.0);
}

TEST(Llc, UsedNeverExceedsCapacity) {
  LlcModel llc = make_llc(1000);
  for (std::uint64_t id = 0; id < 100; ++id) {
    llc.access(id, 37 * (id % 7 + 1));
    ASSERT_LE(llc.used(), llc.capacity());
  }
}

TEST(Llc, HitPathGrowthEvictsDownToCapacity) {
  // Regression: an in-place growth served from the cache used to leave
  // used_ above capacity_ because the hit path never ran eviction. The
  // grown entry is MRU, so the victims must be the colder entries.
  LlcModel llc = make_llc(1000);
  EXPECT_FALSE(llc.access(1, 300));
  EXPECT_FALSE(llc.access(2, 300));
  EXPECT_FALSE(llc.access(3, 300));
  EXPECT_EQ(llc.used(), 900u);
  EXPECT_TRUE(llc.access(1, 500));  // grows 300 → 500: 1100 > capacity
  EXPECT_LE(llc.used(), llc.capacity());
  EXPECT_TRUE(llc.resident(1)) << "the touched entry survives";
  EXPECT_FALSE(llc.resident(2)) << "the LRU victim goes first";
  EXPECT_TRUE(llc.resident(3));
  EXPECT_EQ(llc.used(), 800u);
  EXPECT_EQ(llc.evictions(), 1u);
}

TEST(Llc, HitPathGrowthBeyondCapacityDropsTheEntryItself) {
  // 500 is cacheable (= bypass threshold) but a growth to 1200 exceeds
  // total capacity: everything else is evicted first, then the grown
  // entry is dropped too. The access still counts as a hit — the data
  // was served before the growth took effect.
  LlcModel llc = make_llc(1000);
  EXPECT_FALSE(llc.access(1, 200));
  EXPECT_FALSE(llc.access(2, 500));
  EXPECT_TRUE(llc.access(2, 1200));
  EXPECT_FALSE(llc.resident(2));
  EXPECT_FALSE(llc.resident(1));
  EXPECT_EQ(llc.used(), 0u);
  EXPECT_EQ(llc.hits(), 1u);
  EXPECT_EQ(llc.evictions(), 2u);
}

TEST(Llc, EvictionCounterTracksCapacityPressureOnly) {
  LlcModel llc = make_llc(1000);
  llc.access(1, 400);
  llc.access(2, 400);
  llc.access(3, 400);  // evicts 1
  EXPECT_EQ(llc.evictions(), 1u);
  llc.invalidate(2);  // not an eviction
  EXPECT_EQ(llc.evictions(), 1u);
  llc.clear();
  EXPECT_EQ(llc.evictions(), 0u);
}

TEST(Llc, ReservePreservesBehaviour) {
  LlcModel reserved = make_llc(1000);
  reserved.reserve(64);
  LlcModel plain = make_llc(1000);
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t id = 0; id < 8; ++id) {
      const std::uint64_t bytes = 100 + 37 * ((id + round) % 5);
      ASSERT_EQ(reserved.access(id, bytes), plain.access(id, bytes));
      ASSERT_EQ(reserved.used(), plain.used());
    }
  }
  EXPECT_EQ(reserved.hits(), plain.hits());
  EXPECT_EQ(reserved.evictions(), plain.evictions());
}

TEST(Llc, WorkingSetLargerThanCacheThrashes) {
  LlcModel llc = make_llc(1000);
  // Cycle over 5 objects of 400 bytes: only 2 fit, LRU order guarantees
  // every access misses.
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t id = 0; id < 5; ++id) {
      ASSERT_FALSE(llc.access(id, 400));
    }
  }
  EXPECT_EQ(llc.hits(), 0u);
}

}  // namespace
}  // namespace mnemo::hybridmem
