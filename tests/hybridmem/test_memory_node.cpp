#include "hybridmem/memory_node.hpp"

#include <gtest/gtest.h>

#include "hybridmem/emulation_profile.hpp"
#include "util/bytes.hpp"

namespace mnemo::hybridmem {
namespace {

NodeSpec fast_spec() { return paper_testbed().fast; }
NodeSpec slow_spec() { return paper_testbed().slow; }

TEST(NodeSpec, StreamTimeMatchesBandwidth) {
  const NodeSpec fast = fast_spec();
  // 14.9 GB/s == 14.9 bytes/ns: 14.9e9 bytes take 1e9 ns.
  EXPECT_NEAR(fast.stream_ns(14'900'000'000ULL), 1e9, 1.0);
  EXPECT_DOUBLE_EQ(fast.stream_ns(0), 0.0);
}

TEST(MemoryNode, AllocationRespectsCapacity) {
  MemoryNode node(NodeSpec{"n", 10.0, 1.0, 100});
  EXPECT_TRUE(node.allocate(60));
  EXPECT_EQ(node.used_bytes(), 60u);
  EXPECT_EQ(node.free_bytes(), 40u);
  EXPECT_FALSE(node.allocate(41));
  EXPECT_EQ(node.used_bytes(), 60u) << "failed alloc must not change state";
  EXPECT_TRUE(node.allocate(40));
  EXPECT_EQ(node.object_count(), 2u);
}

TEST(MemoryNode, ReleaseReturnsCapacity) {
  MemoryNode node(NodeSpec{"n", 10.0, 1.0, 100});
  ASSERT_TRUE(node.allocate(80));
  node.release(80);
  EXPECT_EQ(node.used_bytes(), 0u);
  EXPECT_EQ(node.object_count(), 0u);
  EXPECT_TRUE(node.allocate(100));
}

TEST(MemoryNode, GrowShrinkKeepObjectCount) {
  MemoryNode node(NodeSpec{"n", 10.0, 1.0, 100});
  ASSERT_TRUE(node.allocate(50));
  EXPECT_TRUE(node.grow(30));
  EXPECT_EQ(node.used_bytes(), 80u);
  EXPECT_EQ(node.object_count(), 1u);
  EXPECT_FALSE(node.grow(21));
  node.shrink(60);
  EXPECT_EQ(node.used_bytes(), 20u);
  EXPECT_EQ(node.object_count(), 1u);
}

TEST(MemoryNode, AccessCostLatencyOnly) {
  MemoryNode node(fast_spec());
  AccessTraits t;
  t.latency_touches = 1;
  t.streamed_bytes = 0;
  EXPECT_NEAR(node.access_ns(t, MemOp::kRead), 65.7, 1e-9);
  t.latency_touches = 3;
  EXPECT_NEAR(node.access_ns(t, MemOp::kRead), 3 * 65.7, 1e-9);
}

TEST(MemoryNode, AccessCostStreamComponent) {
  MemoryNode node(slow_spec());
  AccessTraits t;
  t.latency_touches = 1;
  t.streamed_bytes = 100 * util::kKiB;
  const double expected = 238.1 + 100.0 * 1024.0 / 1.81;
  EXPECT_NEAR(node.access_ns(t, MemOp::kRead), expected, 1e-6);
}

TEST(MemoryNode, OverlapHidesStream) {
  MemoryNode node(slow_spec());
  AccessTraits exposed;
  exposed.streamed_bytes = 1 << 20;
  AccessTraits overlapped = exposed;
  overlapped.bandwidth_overlap = 0.9;
  const double full = node.access_ns(exposed, MemOp::kRead);
  const double hidden = node.access_ns(overlapped, MemOp::kRead);
  // Only 10% of the stream remains exposed.
  EXPECT_NEAR(hidden - 238.1, (full - 238.1) * 0.1, 1e-6);
}

TEST(MemoryNode, WriteDiscountOnlyAffectsWrites) {
  MemoryNode node(fast_spec());
  AccessTraits t;
  t.streamed_bytes = 4096;
  t.write_discount = 0.5;
  const double read = node.access_ns(t, MemOp::kRead);
  const double write = node.access_ns(t, MemOp::kWrite);
  EXPECT_NEAR(write, read * 0.5, 1e-9);
}

TEST(MemoryNode, LatencySensitivityScalesLatency) {
  MemoryNode node(fast_spec());
  AccessTraits t;
  t.latency_touches = 2;
  t.latency_sensitivity = 1.5;
  EXPECT_NEAR(node.access_ns(t, MemOp::kRead), 2 * 1.5 * 65.7, 1e-9);
}

TEST(MemoryNode, TrafficCounters) {
  MemoryNode node(fast_spec());
  node.note_traffic(MemOp::kRead, 100);
  node.note_traffic(MemOp::kWrite, 50);
  node.note_traffic(MemOp::kRead, 10);
  EXPECT_EQ(node.reads(), 2u);
  EXPECT_EQ(node.writes(), 1u);
  EXPECT_EQ(node.bytes_streamed(), 160u);
}

TEST(EmulationProfile, PaperFactorsMatchTableI) {
  const EmulationProfile p = paper_testbed();
  EXPECT_NEAR(p.bandwidth_factor(), 0.12, 0.005);  // B: 0.12x
  EXPECT_NEAR(p.latency_factor(), 3.62, 0.01);     // L: 3.62x
  EXPECT_EQ(p.llc_bytes, 12 * util::kMiB);
  EXPECT_EQ(p.fast.capacity_bytes, 4 * util::kGiB);
}

TEST(EmulationProfile, CapacityOverrideKeepsTiming) {
  const EmulationProfile p = paper_testbed_with_capacity(16 * util::kGiB);
  EXPECT_EQ(p.fast.capacity_bytes, 16 * util::kGiB);
  EXPECT_DOUBLE_EQ(p.fast.latency_ns, 65.7);
  EXPECT_DOUBLE_EQ(p.slow.bandwidth_gbps, 1.81);
}

TEST(EmulationProfile, OptaneProjectionIsSlowerThanDram) {
  const EmulationProfile p = optane_projection();
  EXPECT_GT(p.slow.latency_ns, p.fast.latency_ns);
  EXPECT_LT(p.slow.bandwidth_gbps, p.fast.bandwidth_gbps);
}

}  // namespace
}  // namespace mnemo::hybridmem
