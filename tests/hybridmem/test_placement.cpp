#include "hybridmem/placement.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mnemo::hybridmem {
namespace {

TEST(Placement, UniformConstruction) {
  const Placement all_fast(5, NodeId::kFast);
  EXPECT_EQ(all_fast.fast_keys(), 5u);
  EXPECT_EQ(all_fast.slow_keys(), 0u);
  const Placement all_slow(5, NodeId::kSlow);
  EXPECT_EQ(all_slow.fast_keys(), 0u);
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(all_fast.node_of(k), NodeId::kFast);
    EXPECT_EQ(all_slow.node_of(k), NodeId::kSlow);
  }
}

TEST(Placement, FromOrderPrefix) {
  const std::vector<std::uint64_t> order = {3, 1, 4, 0, 2};
  const Placement p = Placement::from_order(order, 2);
  EXPECT_EQ(p.node_of(3), NodeId::kFast);
  EXPECT_EQ(p.node_of(1), NodeId::kFast);
  EXPECT_EQ(p.node_of(4), NodeId::kSlow);
  EXPECT_EQ(p.node_of(0), NodeId::kSlow);
  EXPECT_EQ(p.fast_keys(), 2u);
}

TEST(Placement, FromOrderEdges) {
  const std::vector<std::uint64_t> order = {0, 1, 2};
  EXPECT_EQ(Placement::from_order(order, 0).fast_keys(), 0u);
  EXPECT_EQ(Placement::from_order(order, 3).fast_keys(), 3u);
}

TEST(Placement, BudgetCutStopsAtFirstOverflow) {
  const std::vector<std::uint64_t> order = {0, 1, 2, 3};
  const std::vector<std::uint64_t> sizes = {100, 200, 300, 50};
  // Budget 350: key0 (100) + key1 (200) fit; key2 (300) would overflow and
  // the cut is a prefix, so key3 (50) stays slow too.
  const Placement p = Placement::from_order_with_budget(order, sizes, 350);
  EXPECT_EQ(p.node_of(0), NodeId::kFast);
  EXPECT_EQ(p.node_of(1), NodeId::kFast);
  EXPECT_EQ(p.node_of(2), NodeId::kSlow);
  EXPECT_EQ(p.node_of(3), NodeId::kSlow);
  EXPECT_EQ(p.bytes_on(NodeId::kFast, sizes), 300u);
  EXPECT_EQ(p.bytes_on(NodeId::kSlow, sizes), 350u);
}

TEST(Placement, BudgetZeroAndInfinite) {
  const std::vector<std::uint64_t> order = {0, 1};
  const std::vector<std::uint64_t> sizes = {10, 10};
  EXPECT_EQ(Placement::from_order_with_budget(order, sizes, 0).fast_keys(),
            0u);
  EXPECT_EQ(
      Placement::from_order_with_budget(order, sizes, 1'000'000).fast_keys(),
      2u);
}

TEST(Placement, SetMaintainsCounters) {
  Placement p(4, NodeId::kSlow);
  p.set(2, NodeId::kFast);
  EXPECT_EQ(p.fast_keys(), 1u);
  p.set(2, NodeId::kFast);  // idempotent
  EXPECT_EQ(p.fast_keys(), 1u);
  p.set(2, NodeId::kSlow);
  EXPECT_EQ(p.fast_keys(), 0u);
}

TEST(Placement, BytesOnPartitionsDataset) {
  std::vector<std::uint64_t> order(10);
  std::iota(order.begin(), order.end(), 0);
  const std::vector<std::uint64_t> sizes(10, 7);
  const Placement p = Placement::from_order(order, 4);
  EXPECT_EQ(p.bytes_on(NodeId::kFast, sizes) + p.bytes_on(NodeId::kSlow, sizes),
            70u);
}

}  // namespace
}  // namespace mnemo::hybridmem
