#include "hybridmem/hybrid_memory.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace mnemo::hybridmem {
namespace {

EmulationProfile small_profile() {
  EmulationProfile p = paper_testbed_with_capacity(10 * util::kMiB);
  return p;
}

TEST(HybridMemory, PlaceLocateRemove) {
  HybridMemory mem(small_profile());
  EXPECT_TRUE(mem.place(1, 1000, NodeId::kFast));
  EXPECT_TRUE(mem.place(2, 2000, NodeId::kSlow));
  EXPECT_EQ(mem.locate(1), NodeId::kFast);
  EXPECT_EQ(mem.locate(2), NodeId::kSlow);
  EXPECT_EQ(mem.object_size(1), 1000u);
  EXPECT_EQ(mem.object_count(), 2u);
  EXPECT_EQ(mem.total_used_bytes(), 3000u);
  mem.remove(1);
  EXPECT_FALSE(mem.locate(1).has_value());
  EXPECT_EQ(mem.node(NodeId::kFast).used_bytes(), 0u);
  mem.remove(42);  // unknown id: no-op
}

TEST(HybridMemory, PlaceFailsWhenNodeFull) {
  HybridMemory mem(small_profile());
  EXPECT_TRUE(mem.place(1, 9 * util::kMiB, NodeId::kFast));
  EXPECT_FALSE(mem.place(2, 2 * util::kMiB, NodeId::kFast));
  EXPECT_TRUE(mem.place(2, 2 * util::kMiB, NodeId::kSlow));
}

TEST(HybridMemory, MigrateMovesBytesBetweenNodes) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 5000, NodeId::kFast));
  EXPECT_TRUE(mem.migrate(1, NodeId::kSlow));
  EXPECT_EQ(mem.locate(1), NodeId::kSlow);
  EXPECT_EQ(mem.node(NodeId::kFast).used_bytes(), 0u);
  EXPECT_EQ(mem.node(NodeId::kSlow).used_bytes(), 5000u);
  EXPECT_TRUE(mem.migrate(1, NodeId::kSlow)) << "same-node migrate is ok";
}

TEST(HybridMemory, MigrateFailsWithoutDestinationCapacity) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 6 * util::kMiB, NodeId::kFast));
  ASSERT_TRUE(mem.place(2, 6 * util::kMiB, NodeId::kSlow));
  EXPECT_FALSE(mem.migrate(1, NodeId::kSlow));
  EXPECT_EQ(mem.locate(1), NodeId::kFast) << "object stays put on failure";
}

TEST(HybridMemory, ResizeAdjustsAccounting) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 1000, NodeId::kFast));
  EXPECT_TRUE(mem.resize(1, 4000));
  EXPECT_EQ(mem.node(NodeId::kFast).used_bytes(), 4000u);
  EXPECT_TRUE(mem.resize(1, 500));
  EXPECT_EQ(mem.node(NodeId::kFast).used_bytes(), 500u);
  EXPECT_FALSE(mem.resize(1, 100 * util::kMiB));
  EXPECT_EQ(mem.object_size(1), 500u);
}

TEST(HybridMemory, AccessPricesAgainstOwningNode) {
  HybridMemory mem(small_profile());
  // > bypass threshold (64 KiB) so the LLC never interferes.
  const std::uint64_t big = 100 * util::kKiB;
  ASSERT_TRUE(mem.place(1, big, NodeId::kFast));
  ASSERT_TRUE(mem.place(2, big, NodeId::kSlow));
  AccessTraits t;
  const double fast_ns = mem.access(1, MemOp::kRead, t).ns;
  const double slow_ns = mem.access(2, MemOp::kRead, t).ns;
  EXPECT_GT(slow_ns, fast_ns * 5.0)
      << "SlowMem streams ~8x slower at these sizes";
  // Matches the raw node pricing with the object's size streamed.
  AccessTraits explicit_t;
  explicit_t.streamed_bytes = big;
  EXPECT_NEAR(fast_ns, mem.raw_access_ns(NodeId::kFast, explicit_t, MemOp::kRead),
              1e-9);
}

TEST(HybridMemory, SmallObjectsHitLlcOnReuse) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 1024, NodeId::kSlow));
  AccessTraits t;
  const AccessResult miss = mem.access(1, MemOp::kRead, t);
  const AccessResult hit = mem.access(1, MemOp::kRead, t);
  EXPECT_FALSE(miss.llc_hit);
  EXPECT_TRUE(hit.llc_hit);
  EXPECT_LT(hit.ns, miss.ns * 0.2)
      << "an LLC hit hides the SlowMem penalty";
}

TEST(HybridMemory, DropCachesForcesMissesAgain) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 1024, NodeId::kFast));
  AccessTraits t;
  mem.access(1, MemOp::kRead, t);
  ASSERT_TRUE(mem.access(1, MemOp::kRead, t).llc_hit);
  mem.drop_caches();
  EXPECT_FALSE(mem.access(1, MemOp::kRead, t).llc_hit);
}

TEST(HybridMemory, RemoveInvalidatesLlc) {
  HybridMemory mem(small_profile());
  ASSERT_TRUE(mem.place(1, 1024, NodeId::kFast));
  AccessTraits t;
  mem.access(1, MemOp::kRead, t);
  mem.remove(1);
  ASSERT_TRUE(mem.place(1, 1024, NodeId::kFast));
  EXPECT_FALSE(mem.access(1, MemOp::kRead, t).llc_hit);
}

TEST(HybridMemory, MetadataOnlyAccessStreamsObjectSize) {
  HybridMemory mem(small_profile());
  const std::uint64_t big = 200 * util::kKiB;
  ASSERT_TRUE(mem.place(1, big, NodeId::kFast));
  AccessTraits zero;  // streamed_bytes == 0 -> object size is used
  AccessTraits expl;
  expl.streamed_bytes = big;
  EXPECT_NEAR(mem.access(1, MemOp::kRead, zero).ns,
              mem.raw_access_ns(NodeId::kFast, expl, MemOp::kRead), 1e-9);
}

TEST(HybridMemory, TrafficAccounting) {
  HybridMemory mem(small_profile());
  const std::uint64_t big = 100 * util::kKiB;
  ASSERT_TRUE(mem.place(1, big, NodeId::kSlow));
  AccessTraits t;
  mem.access(1, MemOp::kRead, t);
  mem.access(1, MemOp::kWrite, t);
  EXPECT_EQ(mem.node(NodeId::kSlow).reads(), 1u);
  EXPECT_EQ(mem.node(NodeId::kSlow).writes(), 1u);
  EXPECT_EQ(mem.node(NodeId::kSlow).bytes_streamed(), 2 * big);
}

}  // namespace
}  // namespace mnemo::hybridmem
