#include "util/argparse.hpp"

#include <gtest/gtest.h>

namespace mnemo::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.add_flag("verbose", "chatty output");
  p.add_option("count", "how many", "10");
  p.add_option("name", "a label", "");
  return p;
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser p = make_parser();
  std::string error;
  ASSERT_TRUE(p.parse({}, &error));
  EXPECT_FALSE(p.has_flag("verbose"));
  EXPECT_EQ(p.get("count"), "10");
  EXPECT_EQ(p.get_u64("count"), 10u);
  EXPECT_TRUE(p.positional().empty());
}

TEST(ArgParser, SpaceAndEqualsForms) {
  ArgParser p = make_parser();
  std::string error;
  ASSERT_TRUE(p.parse({"--count", "42", "--name=widget"}, &error));
  EXPECT_EQ(p.get_u64("count"), 42u);
  EXPECT_EQ(p.get("name"), "widget");
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser p = make_parser();
  std::string error;
  ASSERT_TRUE(p.parse({"--verbose", "input.csv", "more"}, &error));
  EXPECT_TRUE(p.has_flag("verbose"));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--bogus"}, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--count"}, &error));
  EXPECT_NE(error.find("requires a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--verbose=yes"}, &error));
}

TEST(ArgParser, NumericConversionErrorsThrow) {
  ArgParser p = make_parser();
  std::string error;
  ASSERT_TRUE(p.parse({"--count", "abc"}, &error));
  EXPECT_THROW((void)p.get_u64("count"), std::invalid_argument);
  EXPECT_THROW((void)p.get_double("count"), std::invalid_argument);
}

TEST(ArgParser, GetDoubleParses) {
  ArgParser p = make_parser();
  std::string error;
  ASSERT_TRUE(p.parse({"--count", "0.25"}, &error));
  EXPECT_DOUBLE_EQ(p.get_double("count"), 0.25);
}

TEST(ArgParser, UnknownOptionSuggestsNearestMatch) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--nmae", "x"}, &error));
  EXPECT_NE(error.find("unknown option --nmae"), std::string::npos);
  EXPECT_NE(error.find("did you mean --name?"), std::string::npos);
}

TEST(ArgParser, UnknownOptionWithoutCloseMatchGetsNoSuggestion) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--frobnicate"}, &error));
  EXPECT_NE(error.find("unknown option --frobnicate"), std::string::npos);
  EXPECT_EQ(error.find("did you mean"), std::string::npos);
}

TEST(ArgParser, DuplicateOptionFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--count", "1", "--count", "2"}, &error));
  EXPECT_NE(error.find("duplicate option --count"), std::string::npos);
}

TEST(ArgParser, DuplicateFlagFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--verbose", "--verbose"}, &error));
  EXPECT_NE(error.find("duplicate option --verbose"), std::string::npos);
}

TEST(ArgParser, MixedFormDuplicateAlsoFails) {
  ArgParser p = make_parser();
  std::string error;
  EXPECT_FALSE(p.parse({"--count=1", "--count", "2"}, &error));
  EXPECT_NE(error.find("duplicate option"), std::string::npos);
}

TEST(ClosestMatch, FindsTransposedTypo) {
  EXPECT_EQ(closest_match("moedl", {"model", "store", "threads"}), "model");
}

TEST(ClosestMatch, FindsOneEditAway) {
  EXPECT_EQ(closest_match("measrue", {"measure", "advise", "report"}),
            "measure");
}

TEST(ClosestMatch, RejectsDistantStrings) {
  EXPECT_EQ(closest_match("zzz", {"model", "store"}), "");
  EXPECT_EQ(closest_match("a", {"ab"}), "");  // distance >= query length
}

TEST(ArgParser, HelpMentionsEveryOption) {
  const ArgParser p = make_parser();
  const std::string help = p.help();
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace mnemo::util
