#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace mnemo::util {
namespace {

TEST(Deadline, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(Deadline::never().armed());
}

TEST(Deadline, AfterZeroMsIsImmediatelyExpired) {
  const Deadline d = Deadline::after_ms(0);
  EXPECT_TRUE(d.armed());
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, FutureDeadlineIsArmedButNotExpired) {
  const Deadline d = Deadline::after_ms(60'000);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.when(), std::chrono::steady_clock::now());
}

TEST(CancelToken, FreshTokenIsNotCanceled) {
  const CancelToken token;
  EXPECT_FALSE(token.canceled());
  EXPECT_EQ(token.reason().code, ErrorCode::kOk);
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelSetsFlagReasonAndCheckThrows) {
  CancelToken token;
  token.cancel({ErrorCode::kCanceled, "client gone"});
  EXPECT_TRUE(token.canceled());
  EXPECT_EQ(token.reason().code, ErrorCode::kCanceled);
  EXPECT_EQ(token.reason().message, "client gone");
  try {
    token.check();
    FAIL() << "check() must throw on a canceled token";
  } catch (const CanceledError& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kCanceled);
    EXPECT_NE(std::string(e.what()).find("client gone"), std::string::npos);
  }
}

TEST(CancelToken, FirstCancelReasonWins) {
  CancelToken token;
  token.cancel({ErrorCode::kDeadlineExceeded, "first"});
  token.cancel({ErrorCode::kCanceled, "second"});
  EXPECT_EQ(token.reason().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(token.reason().message, "first");
}

TEST(CancelToken, ExpiredDeadlineCancelsPassively) {
  // No watchdog, no cancel() call: expiry alone makes canceled() answer
  // true and reason() report deadline_exceeded — the property the
  // campaign runner's between-cell checks rely on.
  const CancelToken token{Deadline::after_ms(0)};
  EXPECT_TRUE(token.canceled());
  EXPECT_EQ(token.reason().code, ErrorCode::kDeadlineExceeded);
  EXPECT_THROW(token.check(), CanceledError);
}

TEST(CancelToken, UnexpiredDeadlineDoesNotCancel) {
  const CancelToken token{Deadline::after_ms(60'000)};
  EXPECT_FALSE(token.canceled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, DeadlineErrorIsTyped) {
  const Error e = CancelToken::deadline_error();
  EXPECT_EQ(e.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(to_string(e.code), "deadline_exceeded");
}

TEST(CancelToken, CallbacksFireExactlyOnceOnCancel) {
  CancelToken token;
  std::atomic<int> fired{0};
  (void)token.on_cancel([&] { ++fired; });
  EXPECT_EQ(fired.load(), 0);
  token.cancel({ErrorCode::kCanceled, "x"});
  EXPECT_EQ(fired.load(), 1);
  token.cancel({ErrorCode::kCanceled, "again"});  // idempotent: no refire
  EXPECT_EQ(fired.load(), 1);
}

TEST(CancelToken, CallbackRegisteredAfterCancelRunsImmediately) {
  CancelToken token;
  token.cancel({ErrorCode::kCanceled, "x"});
  bool ran = false;
  (void)token.on_cancel([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(CancelToken, RemovedCallbackDoesNotFire) {
  CancelToken token;
  std::atomic<int> fired{0};
  const std::size_t id = token.on_cancel([&] { ++fired; });
  token.remove_callback(id);
  token.cancel({ErrorCode::kCanceled, "x"});
  EXPECT_EQ(fired.load(), 0);
}

TEST(CancelToken, PassiveExpiryDoesNotRunCallbacks) {
  // Callbacks are the *active* wake-up path; expiry is observed, not
  // pushed. A deadline-armed waiter must bound its own sleep (wait_until)
  // rather than expect a callback.
  CancelToken token{Deadline::after_ms(0)};
  std::atomic<int> fired{0};
  (void)token.on_cancel([&] { ++fired; });
  EXPECT_TRUE(token.canceled());
  EXPECT_EQ(fired.load(), 0);
  token.cancel(CancelToken::deadline_error());  // the watchdog's push
  EXPECT_EQ(fired.load(), 1);
}

TEST(CancelToken, ConcurrentCancelRunsCallbacksOnce) {
  for (int round = 0; round < 50; ++round) {
    CancelToken token;
    std::atomic<int> fired{0};
    (void)token.on_cancel([&] { ++fired; });
    std::thread a([&] { token.cancel({ErrorCode::kCanceled, "a"}); });
    std::thread b([&] {
      token.cancel({ErrorCode::kDeadlineExceeded, "b"});
    });
    a.join();
    b.join();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_TRUE(token.canceled());
    // Whichever won, the reason is consistent with some single winner.
    const ErrorCode code = token.reason().code;
    EXPECT_TRUE(code == ErrorCode::kCanceled ||
                code == ErrorCode::kDeadlineExceeded);
  }
}

}  // namespace
}  // namespace mnemo::util
