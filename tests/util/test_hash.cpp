#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

namespace mnemo::util {
namespace {

/// The store's cache keys must be stable across processes and builds, so
/// these digests are pinned: if one changes, every on-disk artifact ever
/// written silently misses. Bump artifact versions instead of the hash.
TEST(StableHasher, EmptyDigestIsTheOffsetBases) {
  const StableHasher h;
  EXPECT_EQ(h.lo(), 0xcbf29ce484222325ULL);
  EXPECT_EQ(h.hi(), 0x6c62272e07bb0142ULL);
  EXPECT_EQ(h.hex(), "cbf29ce4842223256c62272e07bb0142");
}

TEST(StableHasher, DigestIsAPureFunctionOfTheFedBytes) {
  StableHasher a;
  StableHasher b;
  a.str("measure");
  a.u64(42);
  a.f64(0.1);
  b.str("measure");
  b.u64(42);
  b.f64(0.1);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.lo(), b.lo());
  EXPECT_EQ(a.hi(), b.hi());
}

TEST(StableHasher, HexIs32LowercaseHexChars) {
  StableHasher h;
  h.str("anything");
  const std::string hex = h.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
    EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
  }
}

TEST(StableHasher, AdjacentStringsCannotAlias) {
  // Length prefixes mean ("ab","c") and ("a","bc") feed different byte
  // streams even though their concatenation is identical.
  StableHasher ab_c;
  ab_c.str("ab");
  ab_c.str("c");
  StableHasher a_bc;
  a_bc.str("a");
  a_bc.str("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());
}

TEST(StableHasher, ChunkedBytesEqualOneShot) {
  const std::string data = "the campaign grid payload";
  StableHasher whole;
  whole.bytes(data.data(), data.size());
  StableHasher chunks;
  chunks.bytes(data.data(), 7);
  chunks.bytes(data.data() + 7, data.size() - 7);
  EXPECT_EQ(whole.hex(), chunks.hex());
}

TEST(StableHasher, IntegerWidthsAreDistinct) {
  // u32(1) and u64(1) must not produce the same stream, or schema changes
  // that widen a field would silently keep old cache keys alive.
  StableHasher narrow;
  narrow.u32(1);
  StableHasher wide;
  wide.u64(1);
  EXPECT_NE(narrow.hex(), wide.hex());
}

TEST(StableHasher, DoublesHashTheirBitPattern) {
  StableHasher pos;
  pos.f64(0.0);
  StableHasher neg;
  neg.f64(-0.0);
  EXPECT_NE(pos.hex(), neg.hex());  // bit-identity, not value equality
}

TEST(StableHasher, SingleBitFlipsChangeBothLanes) {
  StableHasher a;
  a.u64(0);
  StableHasher b;
  b.u64(1);
  EXPECT_NE(a.lo(), b.lo());
  EXPECT_NE(a.hi(), b.hi());
}

TEST(StableHasher, U64SpanIsLengthPrefixed) {
  StableHasher one;
  one.u64_span({1, 2});
  StableHasher two;
  two.u64_span({1});
  two.u64_span({2});
  EXPECT_NE(one.hex(), two.hex());
}

TEST(StableHasher, BoolAndU8AreOneByteEach) {
  StableHasher flags;
  flags.b(true);
  flags.b(false);
  StableHasher raw;
  raw.u8(1);
  raw.u8(0);
  EXPECT_EQ(flags.hex(), raw.hex());
}

}  // namespace
}  // namespace mnemo::util
