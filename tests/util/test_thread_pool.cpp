#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mnemo::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunsManyTasksExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  constexpr int kTasks = 500;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::logic_error("unlucky");
                   },
                   4),
      std::logic_error);
}

TEST(ParallelFor, ResultsMatchSerialComputation) {
  constexpr std::size_t kN = 256;
  std::vector<double> out(kN, 0.0);
  parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 1.5);
  }
}

}  // namespace
}  // namespace mnemo::util
