#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mnemo::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunsManyTasksExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  constexpr int kTasks = 500;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::logic_error("unlucky");
                   },
                   4),
      std::logic_error);
}

TEST(ParallelFor, ResultsMatchSerialComputation) {
  constexpr std::size_t kN = 256;
  std::vector<double> out(kN, 0.0);
  parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ThreadPool, ZeroTaskPoolDestructsCleanly) {
  // Construct and immediately destroy without submitting anything: the
  // workers must wake up on stop and join.
  { ThreadPool pool(3); }
  { ThreadPool pool(1); }
  SUCCEED();
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&, i] {
      std::lock_guard lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& f : futs) f.get();
  // One worker drains a FIFO queue: submission order is execution order.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DestructionDrainsANonEmptyQueue) {
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(1);
    // The first task blocks the only worker long enough for the rest to
    // pile up in the queue, so the destructor runs with a non-empty queue.
    futs.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      done.fetch_add(1);
    }));
    for (int i = 0; i < 40; ++i) {
      futs.push_back(pool.submit([&] { done.fetch_add(1); }));
    }
  }
  // The destructor joined only after every queued task ran.
  EXPECT_EQ(done.load(), 41);
  for (auto& f : futs) f.get();  // all futures are ready, none broken
}

TEST(ParallelFor, ConcurrentThrowersPropagateExactlyOne) {
  // Every task throws a distinct exception; exactly one of them must win
  // and surface, and the loop must not terminate() or deadlock.
  constexpr std::size_t kN = 64;
  std::atomic<int> ran{0};
  try {
    parallel_for(
        kN,
        [&](std::size_t i) {
          ran.fetch_add(1);
          throw std::runtime_error("thrower " + std::to_string(i));
        },
        4);
    FAIL() << "expected an exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("thrower ", 0), 0u) << e.what();
  }
  // A thrown task does not cancel its siblings: every index still ran.
  EXPECT_EQ(ran.load(), static_cast<int>(kN));
}

TEST(ParallelFor, SingleThreadMatchesSerialOrderOfSideEffects) {
  std::vector<std::size_t> order;
  parallel_for(16, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, MoreThreadsThanTasksStillCoversAll) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HardwareThreads, IsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

}  // namespace
}  // namespace mnemo::util
