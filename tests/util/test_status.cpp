#include "util/status.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mnemo::util {
namespace {

TEST(ErrorCode, Names) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(to_string(ErrorCode::kCapacityExhausted), "capacity_exhausted");
  EXPECT_EQ(to_string(ErrorCode::kFaultInjected), "fault_injected");
  EXPECT_EQ(to_string(ErrorCode::kRetriesExhausted), "retries_exhausted");
  EXPECT_EQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(to_string(ErrorCode::kFailedPrecondition),
            "failed_precondition");
}

TEST(Error, ToStringRendersOnlyTheFieldsThatAreSet) {
  Error plain{ErrorCode::kInvalidArgument, "bad spec"};
  EXPECT_EQ(plain.to_string(), "invalid_argument: bad spec");

  Error capacity{ErrorCode::kCapacityExhausted, "node full"};
  capacity.key = 42;
  capacity.requested_bytes = 128;
  capacity.available_bytes = 64;
  EXPECT_EQ(capacity.to_string(),
            "capacity_exhausted: node full [key=42] "
            "[requested=128B available=64B]");

  Error retries{ErrorCode::kRetriesExhausted, "gave up"};
  retries.key = 7;
  retries.attempts = 4;
  EXPECT_EQ(retries.to_string(), "retries_exhausted: gave up [key=7] [tries=4]");
}

TEST(Error, EqualityComparesAllFields) {
  Error a{ErrorCode::kFaultInjected, "boom"};
  Error b = a;
  EXPECT_EQ(a, b);
  b.attempts = 1;
  EXPECT_FALSE(a == b);
}

TEST(Status, DefaultIsOkAndErrorCarriesThrough) {
  const Status ok;
  EXPECT_TRUE(ok.ok());

  const Status failed = Error{ErrorCode::kCapacityExhausted, "full"};
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kCapacityExhausted);
  EXPECT_EQ(failed.error().message, "full");
}

TEST(Result, HoldsValueOrError) {
  const Result<int> good = 5;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(good.value_or(-1), 5);

  const Result<int> bad = Error{ErrorCode::kRetriesExhausted, "no luck"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kRetriesExhausted);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MutableValueIsWritable) {
  Result<std::string> r = std::string("abc");
  r.value() += "d";
  EXPECT_EQ(r.value(), "abcd");
}

TEST(ParseError, CarriesFileAndLineAndFormatsWhat) {
  const ParseError e("spec.txt", 12, "unknown key 'foo'");
  EXPECT_EQ(e.file(), "spec.txt");
  EXPECT_EQ(e.line(), 12u);
  EXPECT_STREQ(e.what(), "spec.txt:12: unknown key 'foo'");
}

TEST(ParseError, IsAnInvalidArgument) {
  // Existing malformed-input expectations catch std::invalid_argument;
  // ParseError must keep satisfying them.
  try {
    throw ParseError("f", 1, "m");
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "f:1: m");
  }
}

}  // namespace
}  // namespace mnemo::util
