#include "util/arena.hpp"

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mnemo::util {
namespace {

bool aligned_to(const void* p, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(aligned_to(b, 8));
  EXPECT_TRUE(aligned_to(c, 64));
  // Writing to each block must not clobber the others.
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 8);
  std::memset(c, 0xcc, 1);
  EXPECT_EQ(*static_cast<unsigned char*>(a), 0xaa);
  EXPECT_EQ(*static_cast<unsigned char*>(b), 0xbb);
  EXPECT_EQ(*static_cast<unsigned char*>(c), 0xcc);
}

TEST(Arena, OverAlignedAllocationsRespectAlignment) {
  Arena arena(128);  // small first chunk to force the over-aligned path
  for (const std::size_t alignment : {32UL, 64UL, 128UL, 256UL}) {
    void* p = arena.allocate(alignment * 2, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, alignment)) << "alignment " << alignment;
    std::memset(p, 0x5a, alignment * 2);
  }
}

TEST(Arena, ZeroByteAllocationYieldsDistinctPointers) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);  // rounded up to one byte each
}

TEST(Arena, LargeAllocationExceedingChunkFallsBackToDedicatedChunk) {
  Arena arena(64);
  // Far larger than any doubling of the 64-byte first chunk would reach in
  // one step: must land in a chunk grown to at least the request.
  const std::size_t big = 1 << 20;
  void* p = arena.allocate(big, 16);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, big);
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(Arena, ResetKeepsChunksAndReusesThem) {
  Arena arena(256);
  // First cycle: grow to a steady-state footprint.
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  const std::size_t chunks_after_first = arena.chunk_count();
  const std::size_t reserved_after_first = arena.bytes_reserved();
  EXPECT_GT(chunks_after_first, 0U);

  // Grow-once property: an identical second cycle must allocate no new
  // chunks — reset rewinds the bump pointer, it does not free.
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0U);
  EXPECT_EQ(arena.chunk_count(), chunks_after_first);
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), chunks_after_first);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_first);
}

TEST(Arena, ResetReturnsSameAddressesForSameSequence) {
  Arena arena;
  std::vector<void*> first;
  for (int i = 0; i < 32; ++i) first.push_back(arena.allocate(24, 8));
  arena.reset();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(arena.allocate(24, 8), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Arena, StatsTrackAllocations) {
  Arena arena;
  EXPECT_EQ(arena.allocation_count(), 0U);
  EXPECT_EQ(arena.bytes_allocated(), 0U);
  (void)arena.allocate(100, 8);
  (void)arena.allocate(50, 8);
  EXPECT_EQ(arena.allocation_count(), 2U);
  EXPECT_GE(arena.bytes_allocated(), 150U);
}

TEST(Arena, RandomizedProperty_AlignmentAndNonOverlap) {
  // Property test: any interleaving of sizes/alignments yields blocks that
  // are correctly aligned and mutually disjoint.
  Rng rng(0xa7e4a);
  Arena arena(512);
  struct Block {
    unsigned char* ptr;
    std::size_t size;
    unsigned char tag;
  };
  std::vector<Block> blocks;
  for (int i = 0; i < 500; ++i) {
    const std::size_t size = static_cast<std::size_t>(rng.uniform(1, 700));
    const std::size_t alignment = 1UL << rng.uniform(0, 6);  // 1..64
    auto* p = static_cast<unsigned char*>(arena.allocate(size, alignment));
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(aligned_to(p, alignment));
    const auto tag = static_cast<unsigned char>(i & 0xff);
    std::memset(p, tag, size);
    blocks.push_back({p, size, tag});
  }
  // Every block still holds its own tag: no two blocks overlapped.
  for (const Block& b : blocks) {
    for (std::size_t j = 0; j < b.size; ++j) {
      ASSERT_EQ(b.ptr[j], b.tag);
    }
  }
}

TEST(Arena, WorksAsPmrVectorResource) {
  Arena arena;
  std::pmr::vector<std::uint64_t> v(&arena);
  for (std::uint64_t i = 0; i < 10'000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GE(arena.bytes_allocated(), 10'000 * sizeof(std::uint64_t));
}

TEST(Arena, IsEqualOnlyToItself) {
  Arena a;
  Arena b;
  EXPECT_TRUE(a.is_equal(a));
  EXPECT_FALSE(a.is_equal(b));
  // Consequence: two pmr vectors on the same arena can O(1)-steal on move
  // assignment, vectors on different arenas cannot.
  std::pmr::vector<int> x({1, 2, 3}, &a);
  std::pmr::vector<int> y(&a);
  y = std::move(x);
  EXPECT_EQ(y.size(), 3U);
}

}  // namespace
}  // namespace mnemo::util
