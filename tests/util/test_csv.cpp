#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace mnemo::util::csv {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(escape("hello"), "hello");
  EXPECT_EQ(escape("123.45"), "123.45");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(escape("a,b"), "\"a,b\"");
  EXPECT_EQ(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParse, SimpleFields) {
  const auto fields = parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, QuotedFieldsRoundTrip) {
  const std::string original = "a,b";
  const auto fields = parse_line(escape(original) + ",plain");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], original);
  EXPECT_EQ(fields[1], "plain");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = parse_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvParse, ToleratesCrlf) {
  const auto fields = parse_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvWriter, StreamRows) {
  std::ostringstream out;
  {
    Writer w(out);
    w.row({"h1", "h2"});
    w.field("x").field(std::uint64_t{42}).end_row();
    w.field(3.14159, 3);
    w.end_row();
    EXPECT_EQ(w.rows_written(), 3u);
  }
  EXPECT_EQ(out.str(), "h1,h2\nx,42\n3.14\n");
}

TEST(CsvWriter, DestructorClosesOpenRow) {
  std::ostringstream out;
  {
    Writer w(out);
    w.field("dangling");
  }
  EXPECT_EQ(out.str(), "dangling\n");
}

TEST(CsvFile, WriteThenReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mnemo_csv_test.csv";
  {
    Writer w(path);
    w.row({"key", "value, with comma"});
    w.row({"1", "2"});
  }
  const auto rows = read_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "value, with comma");
  EXPECT_EQ(rows[1][0], "1");
  std::filesystem::remove(path);
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/nowhere.csv"), std::runtime_error);
  EXPECT_THROW(Writer("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mnemo::util::csv
