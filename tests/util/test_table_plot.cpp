#include <gtest/gtest.h>

#include <cmath>

#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace mnemo::util {
namespace {

TEST(TablePrinter, RendersHeaderSeparatorAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22.0"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, PadsShortRowsAndWidensForLongOnes) {
  TablePrinter t({"a"});
  t.add_row({"1", "2", "3"});
  t.add_row({});
  const std::string out = t.render();
  // Every rendered line has the same length.
  std::size_t line_len = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    start = end + 1;
  }
}

TEST(TablePrinter, NumberFormatters) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(0.856, 1), "85.6%");
}

TEST(AsciiPlot, RendersSeriesMarkersAndLegend) {
  AsciiPlot plot("test", "x", "y", 40, 10);
  plot.add(PlotSeries{"up", {0, 1, 2}, {0, 1, 2}, '*'});
  plot.add(PlotSeries{"down", {0, 1, 2}, {2, 1, 0}, 'o'});
  const std::string out = plot.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("'*' up"), std::string::npos);
  EXPECT_NE(out.find("x: x"), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotSaysNoData) {
  AsciiPlot plot("empty", "x", "y");
  EXPECT_NE(plot.render().find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot plot("flat", "x", "y", 20, 5);
  plot.add(PlotSeries{"flat", {1, 1, 1}, {5, 5, 5}, '#'});
  EXPECT_NE(plot.render().find('#'), std::string::npos);
}

TEST(AsciiPlot, IgnoresNonFiniteSamples) {
  AsciiPlot plot("nan", "x", "y", 20, 5);
  plot.add(PlotSeries{
      "mixed", {0, 1, 2}, {1.0, std::nan(""), 3.0}, '+'});
  EXPECT_NE(plot.render().find('+'), std::string::npos);
}

}  // namespace
}  // namespace mnemo::util
