// Dispatch-law property tests for the TaskScheduler (tentpole): EDF
// ordering across groups, weighted-round-robin fairness without
// starvation, run_batch fork-join semantics (exceptions, nesting,
// cooperative help), cancellation shedding at cell boundaries, and the
// deadline timer queue that replaced the watchdog thread.
//
// Ordering tests use a single-worker scheduler plus a gate task: while
// the only worker is parked inside the gate, the test stages a known
// queue shape, then releases the gate and reads back the exact dispatch
// sequence — single-threaded drain order is part of the contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/task_scheduler.hpp"

namespace mnemo::util {
namespace {

using Group = TaskScheduler::Group;
using GroupOptions = TaskScheduler::GroupOptions;
using TaskClass = TaskScheduler::TaskClass;

/// Blocks the scheduler's (single) worker inside a task until release()
/// — everything submitted in between queues up behind it.
class Gate {
 public:
  explicit Gate(TaskScheduler& sched) : state_(std::make_shared<State>()) {
    auto group = sched.make_group();
    // The task holds the state by shared_ptr, so the Gate object may be
    // destroyed before the worker finishes unwinding.
    group->submit(TaskClass::kRequest, [st = state_] {
      st->entered.set_value();
      st->released.get_future().wait();
    });
    state_->entered.get_future().wait();  // the worker is now held
  }
  void release() { state_->released.set_value(); }

 private:
  struct State {
    std::promise<void> entered;
    std::promise<void> released;
  };
  std::shared_ptr<State> state_;
};

/// Thread-safe dispatch-order recorder.
class OrderLog {
 public:
  void push(char tag) {
    std::lock_guard lock(mu_);
    order_.push_back(tag);
  }
  [[nodiscard]] std::string str() const {
    std::lock_guard lock(mu_);
    return {order_.begin(), order_.end()};
  }

 private:
  mutable std::mutex mu_;
  std::vector<char> order_;
};

std::shared_ptr<Group> deadline_group(TaskScheduler& sched,
                                      std::uint64_t deadline_ms) {
  GroupOptions opts;
  opts.deadline = Deadline::after_ms(deadline_ms);
  return sched.make_group(opts);
}

TEST(TaskSchedulerDispatch, EarliestDeadlineGroupDispatchesFirst) {
  OrderLog log;
  {
    TaskScheduler sched(1);
    Gate gate(sched);
    // Armed in reverse deadline order; far deadlines so none expires.
    auto far = deadline_group(sched, 300'000);
    auto mid = deadline_group(sched, 200'000);
    auto near = deadline_group(sched, 100'000);
    far->submit(TaskClass::kCell, [&] { log.push('F'); });
    mid->submit(TaskClass::kCell, [&] { log.push('M'); });
    near->submit(TaskClass::kCell, [&] { log.push('N'); });
    gate.release();
  }  // dtor drains
  EXPECT_EQ(log.str(), "NMF");
}

TEST(TaskSchedulerDispatch, DeadlineFreeGroupsDispatchInCreationOrder) {
  OrderLog log;
  {
    TaskScheduler sched(1);
    Gate gate(sched);
    auto first = sched.make_group();
    auto second = sched.make_group();
    // Submitted in reverse creation order: the tie-break is the group's
    // creation sequence, not submission time.
    second->submit(TaskClass::kCell, [&] { log.push('2'); });
    first->submit(TaskClass::kCell, [&] { log.push('1'); });
    gate.release();
  }
  EXPECT_EQ(log.str(), "12");
}

TEST(TaskSchedulerDispatch, SmallDeadlinedGroupOvertakesABigBacklog) {
  // A big deadline-free group has 6 cells queued before a small
  // deadline-armed group arrives with 2. EDF-within-WRR interleaves the
  // small group's cells at the head of each round instead of making it
  // wait out the backlog: S B S B B B B B.
  OrderLog log;
  {
    TaskScheduler sched(1);
    Gate gate(sched);
    auto big = sched.make_group();
    for (int i = 0; i < 6; ++i) {
      big->submit(TaskClass::kCell, [&] { log.push('B'); });
    }
    auto small = deadline_group(sched, 100'000);
    for (int i = 0; i < 2; ++i) {
      small->submit(TaskClass::kCell, [&] { log.push('S'); });
    }
    gate.release();
  }
  EXPECT_EQ(log.str(), "SBSBBBBB");
}

TEST(TaskSchedulerDispatch, WeightedRoundRobinGrantsWeightPerRound) {
  // Weight 2 vs weight 1: each round dispatches AAB, and the refill
  // happens only once every runnable group is credit-spent — so B is
  // never starved no matter how deep A's backlog is.
  OrderLog log;
  {
    TaskScheduler sched(1);
    Gate gate(sched);
    GroupOptions heavy;
    heavy.weight = 2;
    auto a = sched.make_group(heavy);
    auto b = sched.make_group();
    for (int i = 0; i < 4; ++i) {
      a->submit(TaskClass::kCell, [&] { log.push('A'); });
    }
    for (int i = 0; i < 2; ++i) {
      b->submit(TaskClass::kCell, [&] { log.push('B'); });
    }
    gate.release();
  }
  EXPECT_EQ(log.str(), "AABAAB");
}

TEST(TaskSchedulerBatch, RunBatchRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 64;
  TaskScheduler sched(4);
  auto group = sched.make_group();
  std::vector<std::atomic<int>> hits(kN);
  sched.run_batch(*group, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerBatch, FirstCellExceptionIsRethrownAfterTheBatchDrains) {
  TaskScheduler sched(2);
  auto group = sched.make_group();
  std::atomic<int> executed{0};
  try {
    sched.run_batch(*group, 8, [&](std::size_t i) {
      ++executed;
      if (i == 3) throw std::runtime_error("cell 3 boom");
    });
    FAIL() << "run_batch must rethrow the cell's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3 boom");
  }
  // The batch drained fully before rethrowing (fork-join, not abort).
  EXPECT_EQ(executed.load(), 8);
  // The scheduler is unharmed: the next batch completes normally.
  std::atomic<int> after{0};
  sched.run_batch(*group, 4, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

TEST(TaskSchedulerBatch, NestedRunBatchFromAWorkerTaskCompletes) {
  // A request driver running *on* the scheduler forks its own batch; the
  // cooperative join (the caller helps run cells) keeps even a
  // single-worker scheduler deadlock-free.
  TaskScheduler sched(1);
  auto driver_group = sched.make_group();
  std::promise<int> result;
  driver_group->submit(TaskClass::kRequest, [&] {
    auto batch_group = sched.make_group();
    std::atomic<int> sum{0};
    sched.run_batch(*batch_group, 4,
                    [&](std::size_t i) { sum += static_cast<int>(i) + 1; });
    result.set_value(sum.load());
  });
  EXPECT_EQ(result.get_future().get(), 1 + 2 + 3 + 4);
}

TEST(TaskSchedulerCancel, CanceledGroupShedsItsWholeBatch) {
  TaskScheduler sched(2);
  CancelToken token;
  token.cancel({ErrorCode::kCanceled, "shed it all"});
  GroupOptions opts;
  opts.cancel = &token;
  auto group = sched.make_group(opts);
  std::atomic<int> executed{0};
  // Shed cells still settle, so the batch drains and returns — the
  // bodies just never run.
  sched.run_batch(*group, 16, [&](std::size_t) { ++executed; });
  EXPECT_EQ(executed.load(), 0);
}

TEST(TaskSchedulerCancel, MidBatchCancelStopsAtACellBoundary) {
  // The first executed cell cancels the token; every cell dispatched
  // after the flag is visible is shed. At most the caller's and the
  // worker's in-flight cells slip through — the long tail never runs.
  constexpr std::size_t kN = 64;
  TaskScheduler sched(1);
  CancelToken token;
  GroupOptions opts;
  opts.cancel = &token;
  auto group = sched.make_group(opts);
  std::atomic<int> executed{0};
  sched.run_batch(*group, kN, [&](std::size_t) {
    ++executed;
    token.cancel({ErrorCode::kCanceled, "first cell pulls the plug"});
  });
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), static_cast<int>(kN) / 2);
}

TEST(TaskSchedulerTimer, FiresItsCallbackAfterTheDeadline) {
  TaskScheduler sched(2);
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  (void)sched.arm(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5), [&] {
        std::lock_guard lock(mu);
        fired = true;
        cv.notify_all();
      });
  std::unique_lock lock(mu);
  EXPECT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(10), [&] { return fired; }));
  EXPECT_EQ(sched.armed(), 0u);
}

TEST(TaskSchedulerTimer, DisarmedTicketNeverFires) {
  TaskScheduler sched(2);
  std::atomic<bool> fired{false};
  const TaskScheduler::Ticket ticket = sched.arm(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20),
      [&] { fired = true; });
  sched.disarm(ticket);
  EXPECT_EQ(sched.armed(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(fired.load());
}

TEST(TaskSchedulerTimer, FiresInDeadlineOrderAcrossManyTickets) {
  TaskScheduler sched(2);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  for (int i = 4; i >= 0; --i) {  // armed in reverse deadline order
    (void)sched.arm(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5 + 10 * i),
                    [&, i] {
                      std::lock_guard lock(mu);
                      order.push_back(i);
                      cv.notify_all();
                    });
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return order.size() == 5u; }));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskSchedulerTimer, TimersFireEvenWhileCellsKeepWorkersBusy) {
  // The timer queue shares the workers with the run queue: a due timer
  // is picked up between tasks, not starved behind them.
  TaskScheduler sched(1);
  std::atomic<bool> fired{false};
  (void)sched.arm(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10),
      [&] { fired = true; });
  auto group = sched.make_group();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fired.load() && std::chrono::steady_clock::now() < give_up) {
    sched.run_batch(*group, 4, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  EXPECT_TRUE(fired.load());
}

}  // namespace
}  // namespace mnemo::util
