#include "util/artifact_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

namespace mnemo::util {
namespace {

namespace fs = std::filesystem;

TEST(BinRoundTrip, EveryScalarTypeSurvives) {
  BinWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.f64(-0.125);
  w.b(true);
  w.b(false);

  BinReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_TRUE(r.exhausted());
}

TEST(BinRoundTrip, DoublesAreBitExact) {
  BinWriter w;
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::denorm_min());
  BinReader r(w.buffer());
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(BinRoundTrip, StringsKeepEmbeddedNulAndHighBytes) {
  const std::string gnarly = std::string("a\0b", 3) + "\xff\x80";
  BinWriter w;
  w.str(gnarly);
  w.str("");
  BinReader r(w.buffer());
  EXPECT_EQ(r.str(), gnarly);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(BinRoundTrip, U64VectorSurvives) {
  const std::vector<std::uint64_t> v = {0, 1, ~0ULL, 0x8000000000000000ULL};
  BinWriter w;
  w.u64_vec(v);
  w.u64_vec({});
  BinReader r(w.buffer());
  EXPECT_EQ(r.u64_vec(), v);
  EXPECT_TRUE(r.u64_vec().empty());
}

TEST(BinReader, TruncatedStreamThrowsArtifactError) {
  BinWriter w;
  w.u64(7);
  const std::string& full = w.buffer();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BinReader r(std::string_view(full).substr(0, cut));
    EXPECT_THROW((void)r.u64(), ArtifactError) << "cut at " << cut;
  }
}

TEST(BinReader, TruncatedStringPayloadThrows) {
  BinWriter w;
  w.str("four chars short of a full string");
  std::string bytes = w.buffer();
  bytes.resize(bytes.size() - 4);
  BinReader r(bytes);
  EXPECT_THROW((void)r.str(), ArtifactError);
}

TEST(BinReader, HugeClaimedVectorLengthIsRejectedBeforeAllocating) {
  // A corrupt length prefix claiming 2^61 elements must throw, not try to
  // allocate; the length is validated against the bytes actually present.
  BinWriter w;
  w.u64(1ULL << 61);
  BinReader r(w.buffer());
  EXPECT_THROW((void)r.u64_vec(), ArtifactError);
}

TEST(BinReader, ErrorsMentionTruncation) {
  BinReader r("");
  try {
    (void)r.u32();
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(BinReader, RemainingTracksConsumption) {
  BinWriter w;
  w.u32(1);
  w.u32(2);
  BinReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_TRUE(r.exhausted());
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::path(testing::TempDir()) /
           ("mnemo_io_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(AtomicWrite, WritesContentAndLeavesNoTempFile) {
  const TempDir dir;
  const std::string target = (dir.path / "artifact.mna").string();
  const Status st = write_file_atomic(target, "payload bytes");
  ASSERT_TRUE(st.ok()) << (st.ok() ? "" : st.error().to_string());

  std::string back;
  ASSERT_TRUE(read_file(target, &back));
  EXPECT_EQ(back, "payload bytes");

  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "artifact.mna");
  }
  EXPECT_EQ(entries, 1u);  // no .tmp.* debris
}

TEST(AtomicWrite, ReplacesExistingFileWholesale) {
  const TempDir dir;
  const std::string target = (dir.path / "artifact.mna").string();
  ASSERT_TRUE(write_file_atomic(target, "old").ok());
  ASSERT_TRUE(write_file_atomic(target, "new and longer").ok());
  std::string back;
  ASSERT_TRUE(read_file(target, &back));
  EXPECT_EQ(back, "new and longer");
}

TEST(AtomicWrite, UnwritableDirectoryIsAStatusNotAThrow) {
  const Status st =
      write_file_atomic("/nonexistent-dir-mnemo/none.mna", "x");
  EXPECT_FALSE(st.ok());
}

TEST(ReadFile, MissingFileReturnsFalse) {
  const TempDir dir;
  std::string contents = "sentinel";
  EXPECT_FALSE(read_file((dir.path / "ghost.mna").string(), &contents));
}

TEST(ReadFile, RoundTripsBinaryBytes) {
  const TempDir dir;
  BinWriter w;
  w.str(std::string("\0\1\2\xff", 4));
  w.u64(~0ULL);
  const std::string target = (dir.path / "bin.mna").string();
  ASSERT_TRUE(write_file_atomic(target, w.buffer()).ok());
  std::string back;
  ASSERT_TRUE(read_file(target, &back));
  EXPECT_EQ(back, w.buffer());
}

}  // namespace
}  // namespace mnemo::util
