#include "util/flat_lru.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace mnemo::util {
namespace {

/// The structure FlatLru replaces: a std::list of (id, payload) nodes plus
/// an id → iterator map. Kept here as the behavioural reference so the
/// equivalence test below pins FlatLru to the exact order semantics of the
/// pre-refactor LRUs.
class ReferenceLru {
 public:
  [[nodiscard]] std::size_t size() const { return list_.size(); }
  [[nodiscard]] bool empty() const { return list_.empty(); }

  std::uint64_t* find(std::uint64_t id) {
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  std::uint64_t* touch(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return nullptr;
    list_.splice(list_.begin(), list_, it->second);
    return &it->second->second;
  }

  void push_front(std::uint64_t id, std::uint64_t payload) {
    list_.emplace_front(id, payload);
    index_[id] = list_.begin();
  }

  [[nodiscard]] std::uint64_t back_id() const { return list_.back().first; }
  [[nodiscard]] std::uint64_t back() const { return list_.back().second; }

  void pop_back() {
    index_.erase(list_.back().first);
    list_.pop_back();
  }

  bool erase(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    list_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    list_.clear();
    index_.clear();
  }

  /// MRU-to-LRU id sequence, for whole-order comparison.
  [[nodiscard]] std::vector<std::uint64_t> order() const {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, payload] : list_) ids.push_back(id);
    return ids;
  }

 private:
  std::list<std::pair<std::uint64_t, std::uint64_t>> list_;
  std::unordered_map<
      std::uint64_t,
      std::list<std::pair<std::uint64_t, std::uint64_t>>::iterator>
      index_;
};

std::vector<std::uint64_t> drain_order(FlatLru<std::uint64_t> lru) {
  std::vector<std::uint64_t> ids;
  // back_id/pop_back walk the recency order LRU-first; reverse at the end.
  while (!lru.empty()) {
    ids.push_back(lru.back_id());
    lru.pop_back();
  }
  std::reverse(ids.begin(), ids.end());
  return ids;
}

TEST(FlatLru, BasicOrderSemantics) {
  FlatLru<std::uint64_t> lru;
  lru.push_front(1, 10);
  lru.push_front(2, 20);
  lru.push_front(3, 30);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.back_id(), 1u);  // oldest
  EXPECT_EQ(lru.back(), 10u);
  ASSERT_NE(lru.touch(1), nullptr);  // 1 becomes MRU
  EXPECT_EQ(lru.back_id(), 2u);
  EXPECT_EQ(*lru.find(3), 30u);
  EXPECT_EQ(lru.back_id(), 2u) << "find must not disturb recency";
  lru.pop_back();
  EXPECT_FALSE(lru.erase(2)) << "already popped";
  EXPECT_TRUE(lru.erase(3));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.back_id(), 1u);
}

TEST(FlatLru, TouchAndFindMissingReturnNull) {
  FlatLru<std::uint64_t> lru;
  EXPECT_EQ(lru.touch(7), nullptr);
  EXPECT_EQ(lru.find(7), nullptr);
  lru.push_front(7, 70);
  lru.pop_back();
  EXPECT_EQ(lru.find(7), nullptr);
}

TEST(FlatLru, SlotsAreReusedAfterErase) {
  FlatLru<std::uint64_t> lru;
  lru.reserve(/*ids=*/16, /*slots=*/2);
  // Two slots suffice forever if at most two entries are live at a time.
  for (std::uint64_t round = 0; round < 100; ++round) {
    lru.push_front(round % 16, round);
    if (lru.size() > 2) ADD_FAILURE();
    if (lru.size() == 2) lru.pop_back();
  }
  EXPECT_EQ(lru.size(), 1u);
}

TEST(FlatLru, OverflowIdsAboveDenseCapWork) {
  // Tagged IDs (e.g. per-store overhead objects) sit far above the dense
  // cap and take the overflow-map path; semantics must be identical.
  const std::uint64_t tagged = (1ULL << 56) | 42;
  FlatLru<std::uint64_t> lru;
  lru.push_front(tagged, 1);
  lru.push_front(5, 2);
  EXPECT_EQ(*lru.find(tagged), 1u);
  ASSERT_NE(lru.touch(tagged), nullptr);
  EXPECT_EQ(lru.back_id(), 5u);
  EXPECT_TRUE(lru.erase(tagged));
  EXPECT_EQ(lru.find(tagged), nullptr);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(FlatLru, ClearKeepsWorkingAfterwards) {
  FlatLru<std::uint64_t> lru;
  for (std::uint64_t id = 0; id < 8; ++id) lru.push_front(id, id);
  lru.clear();
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.find(3), nullptr);
  lru.push_front(3, 33);
  EXPECT_EQ(lru.back_id(), 3u);
}

// The satellite equivalence check: drive FlatLru and the list+map
// reference with the same randomized operation stream and require the
// same return values and, at every checkpoint, the same full MRU→LRU
// order. IDs mix the dense range with overflow IDs above the cap.
TEST(FlatLru, MatchesListMapReferenceUnderRandomizedOps) {
  Rng rng(0xf1a7);
  FlatLru<std::uint64_t> flat;
  ReferenceLru ref;
  std::uint64_t next_payload = 0;

  const auto pick_id = [&]() -> std::uint64_t {
    const std::uint64_t base = rng.uniform(0, 40);
    // One in five ops targets the overflow-map path.
    return rng.uniform(0, 4) == 0 ? (1ULL << 21) + base : base;
  };

  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t id = pick_id();
    switch (rng.uniform(0, 5)) {
      case 0:
      case 1: {  // upsert: touch if present, insert otherwise
        std::uint64_t* f = flat.touch(id);
        std::uint64_t* r = ref.touch(id);
        ASSERT_EQ(f == nullptr, r == nullptr);
        if (f == nullptr) {
          const std::uint64_t payload = ++next_payload;
          flat.push_front(id, payload);
          ref.push_front(id, payload);
        } else {
          ASSERT_EQ(*f, *r);
        }
        break;
      }
      case 2: {  // read-only probe
        std::uint64_t* f = flat.find(id);
        std::uint64_t* r = ref.find(id);
        ASSERT_EQ(f == nullptr, r == nullptr);
        if (f != nullptr) {
          ASSERT_EQ(*f, *r);
        }
        break;
      }
      case 3:  // targeted delete
        ASSERT_EQ(flat.erase(id), ref.erase(id));
        break;
      case 4:  // evict the LRU victim
        ASSERT_EQ(flat.empty(), ref.empty());
        if (!flat.empty()) {
          ASSERT_EQ(flat.back_id(), ref.back_id());
          ASSERT_EQ(flat.back(), ref.back());
          flat.pop_back();
          ref.pop_back();
        }
        break;
      default:  // rare full reset
        if (rng.uniform(0, 200) == 0) {
          flat.clear();
          ref.clear();
        }
        break;
    }
    ASSERT_EQ(flat.size(), ref.size());
    if (op % 1000 == 0) {
      ASSERT_EQ(drain_order(flat), ref.order())
          << "recency order diverged at op " << op;
    }
  }
  EXPECT_EQ(drain_order(flat), ref.order());
}

}  // namespace
}  // namespace mnemo::util
