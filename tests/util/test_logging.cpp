#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace mnemo::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, EmitBelowAndAboveThresholdDoesNotCrash) {
  set_log_level(LogLevel::kWarn);
  // Suppressed and emitted paths both exercise the formatter.
  MNEMO_LOG_DEBUG("suppressed %d", 1);
  MNEMO_LOG_INFO("suppressed %s", "too");
  MNEMO_LOG_WARN("emitted %d %s", 2, "ok");
  MNEMO_LOG_ERROR("emitted %f", 3.0);
  SUCCEED();
}

TEST_F(LoggingTest, LongMessagesAreTruncatedSafely) {
  const std::string big(5000, 'x');
  MNEMO_LOG_ERROR("%s", big.c_str());
  SUCCEED();
}

}  // namespace
}  // namespace mnemo::util
