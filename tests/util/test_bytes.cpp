#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace mnemo::util {
namespace {

TEST(FormatBytes, UnitLadder) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kKiB), "1.0 KiB");
  EXPECT_EQ(format_bytes(100 * kKiB), "100.0 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB / 2), "1.5 MiB");
  EXPECT_EQ(format_bytes(7 * kGiB), "7.0 GiB");
}

TEST(FormatNs, UnitLadder) {
  EXPECT_EQ(format_ns(65.7), "65.7 ns");
  EXPECT_EQ(format_ns(1500.0), "1.50 us");
  EXPECT_EQ(format_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(format_ns(3.25e9), "3.250 s");
}

TEST(ByteConstants, AreConsistent) {
  EXPECT_EQ(kMiB, kKiB * 1024);
  EXPECT_EQ(kGiB, kMiB * 1024);
}

}  // namespace
}  // namespace mnemo::util
