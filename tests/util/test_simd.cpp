// util::simd batch kernels must be drop-in replacements for their scalar
// loops: same bits out, on every ISA tier (AVX2, SSE2, scalar fallback,
// and the MNEMO_SIMD=OFF build). Sizes deliberately straddle the vector
// widths (4 lanes of u64 for AVX2, 2 for SSE2) so head/tail remainder
// handling is exercised on every path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mnemo::util::simd {
namespace {

TEST(Simd, ActiveIsaIsNamedAndStable) {
  const Isa isa = active_isa();
  EXPECT_EQ(isa, active_isa());  // resolved once, then constant
  const char* name = isa_name(isa);
  ASSERT_NE(name, nullptr);
  EXPECT_GT(std::char_traits<char>::length(name), 0u);
#if defined(MNEMO_SIMD_OFF)
  EXPECT_EQ(isa, Isa::kScalar);
#endif
}

TEST(Simd, Mix64BatchMatchesScalarMix64) {
  util::Rng rng(41);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{15}, std::size_t{16}, std::size_t{33}, std::size_t{67}}) {
    std::vector<std::uint64_t> in(n);
    for (auto& v : in) v = rng.next_u64();
    if (n > 2) {
      in[0] = 0;  // edge inputs ride along
      in[1] = std::numeric_limits<std::uint64_t>::max();
    }
    std::vector<std::uint64_t> out(n, 0xdead);
    mix64_batch(in.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], util::mix64(in[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Simd, Mix64IotaBatchMatchesScalarSequence) {
  for (const std::uint64_t first :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{12345},
        std::numeric_limits<std::uint64_t>::max() - 5}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{9}, std::size_t{65}}) {
      std::vector<std::uint64_t> out(n, 0xdead);
      mix64_iota_batch(first, out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], util::mix64(first + i))
            << "first=" << first << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Simd, MinDoubleMatchesMinElement) {
  util::Rng rng(42);
  for (std::size_t n = 1; n <= 70; ++n) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.gaussian() * 1e6;
    const double expected = *std::min_element(x.begin(), x.end());
    ASSERT_EQ(min_double(x.data(), n), expected) << "n=" << n;
  }
  // The minimum can live in the vector body or the scalar tail.
  std::vector<double> tail_min(13, 5.0);
  tail_min.back() = -3.0;
  EXPECT_EQ(min_double(tail_min.data(), tail_min.size()), -3.0);
  std::vector<double> head_min(13, 5.0);
  head_min.front() = -3.0;
  EXPECT_EQ(min_double(head_min.data(), head_min.size()), -3.0);
}

TEST(Simd, AccumulateLanesIsElementwiseExactAddition) {
  util::Rng rng(43);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{5}, std::size_t{8}, std::size_t{16},
                              std::size_t{31}}) {
    std::vector<double> acc(n);
    std::vector<double> x(n);
    std::vector<double> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = rng.gaussian() * 1e3;
      x[i] = rng.gaussian() * 1e3;
      expected[i] = acc[i] + x[i];
    }
    // Dead lanes contribute +0.0, which must be bit-exact identity.
    if (n > 1) {
      x[n / 2] = 0.0;
      expected[n / 2] = acc[n / 2] + 0.0;
    }
    accumulate_lanes(acc.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(acc[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Simd, PartitionIndexBatchMatchesUpperBound) {
  // Same shape as stats::LogHistogram::bucket_bounds(): ascending, -inf
  // sentinel at 0, +inf padding past the live entries.
  std::vector<double> bounds(256, std::numeric_limits<double>::infinity());
  bounds[0] = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < 180; ++i) {
    bounds[i] = 10.0 * std::pow(10.0, static_cast<double>(i - 1) / 20.0);
  }

  const auto reference = [&](double v) -> std::uint32_t {
    if (std::isnan(v)) return 0;
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
    return static_cast<std::uint32_t>((it - bounds.begin()) - 1);
  };

  util::Rng rng(44);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{8}, std::size_t{17},
                              std::size_t{64}}) {
    std::vector<double> x(n);
    for (auto& v : x) {
      // Log-uniform across and beyond the histogram range, exercising
      // both saturation ends.
      v = std::pow(10.0, rng.next_double() * 14.0 - 2.0);
    }
    if (n >= 4) {
      x[0] = 0.0;                                       // below range
      x[1] = std::numeric_limits<double>::infinity();   // above range
      x[2] = bounds[1];                                 // exact boundary
      x[3] = std::numeric_limits<double>::quiet_NaN();  // NaN -> 0
    }
    std::vector<std::uint32_t> out(n, 0xffffffffu);
    partition_index_batch(bounds.data(), x.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], reference(x[i])) << "n=" << n << " i=" << i;
    }
  }

  // Every exact boundary value must land in its own partition, and the
  // value one ulp below must land in the previous one.
  std::vector<double> probes;
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 1; i < 180; ++i) {
    probes.push_back(bounds[i]);
    expected.push_back(static_cast<std::uint32_t>(i));
    probes.push_back(std::nextafter(bounds[i], 0.0));
    expected.push_back(static_cast<std::uint32_t>(i - 1));
  }
  std::vector<std::uint32_t> got(probes.size());
  partition_index_batch(bounds.data(), probes.data(), got.data(),
                        probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << "probe " << probes[i];
  }
}

}  // namespace
}  // namespace mnemo::util::simd
