#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mnemo::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

class RngUniformBounds : public ::testing::TestWithParam<
                             std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(RngUniformBounds, StaysInClosedRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(lo * 31 + hi);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = rng.uniform(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    seen.insert(v);
  }
  // Every value of a small range should eventually appear.
  if (hi - lo < 64) {
    EXPECT_EQ(seen.size(), hi - lo + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngUniformBounds,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 0},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{5, 10},
                      std::pair<std::uint64_t, std::uint64_t>{0, 999},
                      std::pair<std::uint64_t, std::uint64_t>{1'000'000,
                                                              1'000'063},
                      std::pair<std::uint64_t, std::uint64_t>{
                          0, ~std::uint64_t{0} - 1}));

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.uniform(0, kBuckets - 1)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(123);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.gaussian();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(321);
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child_a = parent1.fork(1);
  Rng child_a2 = parent2.fork(1);
  Rng child_b = parent1.fork(2);
  int same_as_sibling = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = child_a.next_u64();
    ASSERT_EQ(a, child_a2.next_u64());  // same stream id => same stream
    if (a == child_b.next_u64()) ++same_as_sibling;
  }
  EXPECT_LT(same_as_sibling, 2);
}

TEST(Mix64, BijectiveOnSample) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10'000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10'000u);
}

TEST(Fnv1a64, MatchesKnownProperties) {
  // Deterministic, differs across inputs, stable across calls.
  EXPECT_EQ(fnv1a64(0), fnv1a64(0));
  EXPECT_NE(fnv1a64(0), fnv1a64(1));
  EXPECT_NE(fnv1a64(1), fnv1a64(1ULL << 32));
}

}  // namespace
}  // namespace mnemo::util
