// Unit tests for the bench_diff comparison engine (tools/bench_diff_lib.hpp)
// — the exact logic the CLI shim ships. The contract under test is the
// exit-code policy: 0 clean, 1 on regression OR coverage loss in either
// direction, 2 when the files share no comparable metrics at all (the
// graceful missing-section path: clear message, nonzero exit, no crash).

#include <gtest/gtest.h>

#include <string>

#include "bench_diff_lib.hpp"

namespace mnemo::benchdiff {
namespace {

Parser parse(const std::string& text) {
  Parser p(text);
  p.parse_value("");
  EXPECT_FALSE(p.failed) << text;
  return p;
}

const std::string kBaseline = R"({
  "schema": "mnemo.bench.campaign/v2",
  "aggregate": {"legacy_s": 2.0, "compiled_s": 1.0, "speedup": 2.0},
  "results": [
    {"store": "cachet", "threads": 2,
     "execute": {"median_ops_per_s": 1000.0, "min_s": 0.5},
     "median_s": 0.25}
  ]
})";

TEST(BenchDiff, IdenticalFilesCompareCleanWithExitZero) {
  const std::string text = kBaseline;  // Parser keeps a reference
  const Parser base = parse(text);
  const DiffResult diff = diff_metrics(base, base, 10.0);
  EXPECT_EQ(diff.compared, 3u);  // speedup, median_ops_per_s, median_s
  EXPECT_EQ(diff.regressed, 0u);
  EXPECT_EQ(diff.missing_in_candidate, 0u);
  EXPECT_EQ(diff.missing_in_baseline, 0u);
  EXPECT_EQ(diff.exit_code(), 0);
  // min_s and *_s config echoes are not part of the comparison surface.
  EXPECT_EQ(diff.report.find("min_s"), std::string::npos);
}

TEST(BenchDiff, DirectionAwareRegressionIsExitOne) {
  const std::string base_text = kBaseline;
  // Time metric up 50% and throughput-style speedup down 50%: both are
  // regressions despite moving in opposite numeric directions.
  const std::string cand_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"legacy_s": 2.0, "compiled_s": 1.0, "speedup": 1.0},
    "results": [
      {"store": "cachet", "threads": 2,
       "execute": {"median_ops_per_s": 1000.0, "min_s": 0.5},
       "median_s": 0.375}
    ]
  })";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.compared, 3u);
  EXPECT_EQ(diff.regressed, 2u);
  EXPECT_EQ(diff.exit_code(), 1);
  EXPECT_NE(diff.report.find("REGRESSED"), std::string::npos);
  // Row labels carry the identifying siblings, not just the JSON path.
  EXPECT_NE(diff.report.find("[cachet t2]"), std::string::npos);
}

TEST(BenchDiff, ImprovementsAndSlackWithinThresholdPass) {
  const std::string base_text = kBaseline;
  const std::string cand_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"legacy_s": 2.0, "compiled_s": 1.0, "speedup": 3.0},
    "results": [
      {"store": "cachet", "threads": 2,
       "execute": {"median_ops_per_s": 960.0, "min_s": 0.5},
       "median_s": 0.26}
    ]
  })";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  // -4% throughput and +4% time are inside the 10% budget; +50% speedup
  // is an improvement, never a regression.
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.regressed, 0u);
  EXPECT_EQ(diff.exit_code(), 0);
}

TEST(BenchDiff, MetricMissingInCandidateIsCoverageLossExitOne) {
  const std::string base_text = kBaseline;
  const std::string cand_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"legacy_s": 2.0, "compiled_s": 1.0, "speedup": 2.0},
    "results": [
      {"store": "cachet", "threads": 2,
       "execute": {"min_s": 0.5},
       "median_s": 0.25}
    ]
  })";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.compared, 2u);
  EXPECT_EQ(diff.regressed, 0u);
  EXPECT_EQ(diff.missing_in_candidate, 1u);
  EXPECT_EQ(diff.exit_code(), 1) << "coverage loss must not read as a pass";
  EXPECT_NE(diff.report.find("MISSING"), std::string::npos);
  EXPECT_NE(diff.report.find("median_ops_per_s"), std::string::npos);
}

TEST(BenchDiff, MetricMissingInBaselineIsFlaggedExitOne) {
  const std::string base_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"speedup": 2.0}
  })";
  const std::string cand_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"speedup": 2.0, "fused_speedup": 1.5}
  })";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.compared, 1u);
  EXPECT_EQ(diff.missing_in_baseline, 1u);
  EXPECT_EQ(diff.exit_code(), 1);
  EXPECT_NE(diff.report.find("UNEXPECTED"), std::string::npos);
  EXPECT_NE(diff.report.find("refresh the baseline?"), std::string::npos);
}

TEST(BenchDiff, NoComparableMetricsIsExitTwoWithClearMessage) {
  // Renamed sections: both files are valid JSON, neither shares a
  // median/speedup key with the other — in fact the baseline has none.
  const std::string base_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "aggregate": {"elapsed_total": 2.0}
  })";
  const std::string cand_text = R"({
    "schema": "mnemo.bench.campaign/v2",
    "totals": {"median_s": 1.0}
  })";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.compared, 0u);
  EXPECT_EQ(diff.exit_code(), 2);
  EXPECT_NE(diff.report.find("no comparable median metrics found"),
            std::string::npos);
  EXPECT_NE(diff.report.find("missing or renamed sections?"),
            std::string::npos);
}

TEST(BenchDiff, ZeroBaselineValueDoesNotDivide) {
  const std::string base_text = R"({"phase": {"median_s": 0.0}})";
  const std::string cand_text = R"({"phase": {"median_s": 5.0}})";
  const Parser base = parse(base_text);
  const Parser cand = parse(cand_text);
  const DiffResult diff = diff_metrics(base, cand, 10.0);
  EXPECT_EQ(diff.compared, 1u);
  EXPECT_EQ(diff.regressed, 0u);  // delta undefined -> treated as 0%
  EXPECT_EQ(diff.exit_code(), 0);
}

TEST(BenchDiff, ParserFlattensNestedArraysAndStrings) {
  const std::string text = kBaseline;
  const Parser p = parse(text);
  EXPECT_EQ(p.strings.at("schema"), "mnemo.bench.campaign/v2");
  EXPECT_EQ(p.strings.at("results[0].store"), "cachet");
  EXPECT_DOUBLE_EQ(p.numbers.at("aggregate.speedup"), 2.0);
  EXPECT_DOUBLE_EQ(p.numbers.at("results[0].execute.median_ops_per_s"),
                   1000.0);
  Parser bad("{\"oops\": }");
  bad.parse_value("");
  EXPECT_TRUE(bad.failed);
}

}  // namespace
}  // namespace mnemo::benchdiff
