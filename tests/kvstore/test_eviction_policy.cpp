// Vermilion maxmemory eviction policies (Redis maxmemory-policy analogue).

#include <gtest/gtest.h>

#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/vermilion/vermilion.hpp"
#include "util/bytes.hpp"

namespace mnemo::kvstore {
namespace {

using util::kKiB;
using util::kMiB;

hybridmem::EmulationProfile tiny_profile() {
  return hybridmem::paper_testbed_with_capacity(1 * kMiB);
}

StoreConfig quiet_config() {
  StoreConfig cfg;
  cfg.deterministic_service = true;
  return cfg;
}

TEST(EvictionPolicy, Names) {
  EXPECT_EQ(to_string(EvictionPolicy::kNoEviction), "noeviction");
  EXPECT_EQ(to_string(EvictionPolicy::kAllKeysLru), "allkeys-lru");
  EXPECT_EQ(to_string(EvictionPolicy::kAllKeysRandom), "allkeys-random");
}

TEST(EvictionPolicy, NoEvictionRejectsWhenFull) {
  hybridmem::HybridMemory memory(tiny_profile());
  Vermilion store(memory, quiet_config(), EvictionPolicy::kNoEviction);
  std::uint64_t accepted = 0;
  for (std::uint64_t k = 0; k < 30; ++k) {
    if (store.put(k, 100 * kKiB).ok) ++accepted;
  }
  EXPECT_LT(accepted, 30u);
  EXPECT_EQ(store.stats().evictions, 0u);
  EXPECT_EQ(store.record_count(), accepted);
}

class EvictingPolicy : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(EvictingPolicy, WritesAlwaysSucceedByEvicting) {
  hybridmem::HybridMemory memory(tiny_profile());
  Vermilion store(memory, quiet_config(), GetParam());
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(store.put(k, 100 * kKiB).ok) << "k=" << k;
  }
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_LT(store.record_count(), 50u);
  EXPECT_GE(store.record_count(), 1u);
  // The most recent write always survives its own insertion.
  EXPECT_TRUE(store.contains(49));
}

TEST_P(EvictingPolicy, UpdatesGrowByEvictingOthers) {
  hybridmem::HybridMemory memory(tiny_profile());
  Vermilion store(memory, quiet_config(), GetParam());
  for (std::uint64_t k = 0; k < 9; ++k) {
    ASSERT_TRUE(store.put(k, 100 * kKiB).ok);
  }
  // Grow key 0 to half the node: someone else has to go, not key 0.
  ASSERT_TRUE(store.put(0, 500 * kKiB).ok);
  EXPECT_TRUE(store.contains(0));
  EXPECT_GT(store.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, EvictingPolicy,
                         ::testing::Values(EvictionPolicy::kAllKeysLru,
                                           EvictionPolicy::kAllKeysRandom),
                         [](const auto& info) {
                           return std::string(
                               to_string(info.param) == "allkeys-lru"
                                   ? "lru"
                                   : "random");
                         });

TEST(EvictionPolicy, LruKeepsTheHotKey) {
  hybridmem::HybridMemory memory(tiny_profile());
  Vermilion store(memory, quiet_config(), EvictionPolicy::kAllKeysLru);
  // Fill the node, then hammer key 0 while inserting new keys.
  for (std::uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(store.put(k, 90 * kKiB).ok);
  }
  for (std::uint64_t round = 0; round < 40; ++round) {
    ASSERT_TRUE(store.get(0).ok) << "hot key evicted at round " << round;
    ASSERT_TRUE(store.put(100 + round, 90 * kKiB).ok);
  }
  EXPECT_TRUE(store.contains(0))
      << "sampled LRU must protect the constantly-touched key";
}

TEST(EvictionPolicy, DefaultIsNoEviction) {
  hybridmem::HybridMemory memory(tiny_profile());
  Vermilion store(memory, quiet_config());
  EXPECT_EQ(store.eviction_policy(), EvictionPolicy::kNoEviction);
}

}  // namespace
}  // namespace mnemo::kvstore
