#include "kvstore/dynastore/journal.hpp"

#include <gtest/gtest.h>

namespace mnemo::kvstore::dynastore {
namespace {

TEST(Journal, AppendAccountsHeaderPlusPayload) {
  Journal j;
  const auto r = j.append(1, 1000);
  EXPECT_EQ(r.appended_bytes, Journal::kRecordHeader + 1000);
  EXPECT_EQ(j.bytes(), r.appended_bytes);
  EXPECT_EQ(j.appends(), 1u);
  EXPECT_EQ(j.lifetime_bytes(), r.appended_bytes);
}

TEST(Journal, SegmentsSealAtBoundary) {
  Journal j;
  const std::uint64_t payload = Journal::kSegmentBytes / 2;
  EXPECT_FALSE(j.append(1, payload).sealed_segment);
  EXPECT_TRUE(j.append(2, payload).sealed_segment);
  EXPECT_EQ(j.segments(), 2u);  // one sealed + active
}

TEST(Journal, CheckpointReclaimsSealedSegments) {
  Journal j;
  bool checkpointed = false;
  // Push well past the checkpoint threshold.
  for (int i = 0; i < 40; ++i) {
    const auto r = j.append(i, 2 * Journal::kSegmentBytes);
    if (r.checkpointed) {
      checkpointed = true;
      EXPECT_LT(j.bytes(), Journal::kCheckpointAt);
    }
  }
  EXPECT_TRUE(checkpointed);
  EXPECT_GE(j.checkpoints(), 1u);
  // Lifetime bytes keep counting regardless of checkpoints.
  EXPECT_GT(j.lifetime_bytes(), Journal::kCheckpointAt);
}

TEST(Journal, LiveBytesNeverExceedThresholdPlusOneAppend) {
  Journal j;
  for (int i = 0; i < 1000; ++i) {
    j.append(i, 1 << 20);
    ASSERT_LE(j.bytes(), Journal::kCheckpointAt + (1 << 20) +
                             Journal::kRecordHeader);
  }
}

TEST(Journal, DeletionMarkersAreHeaderOnly) {
  Journal j;
  const auto r = j.append(9, 0);
  EXPECT_EQ(r.appended_bytes, Journal::kRecordHeader);
}

}  // namespace
}  // namespace mnemo::kvstore::dynastore
