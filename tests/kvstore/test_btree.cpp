#include "kvstore/dynastore/btree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace mnemo::kvstore::dynastore {
namespace {

Record rec(std::uint64_t size) {
  Record r;
  r.size = size;
  return r;
}

TEST(BTree, EmptyTreeBasics) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.find(1).record, nullptr);
  EXPECT_GE(tree.find(1).depth, 1u);
  tree.check_invariants();
}

TEST(BTree, InsertFindRoundTrip) {
  BPlusTree tree;
  auto up = tree.upsert(10, rec(100));
  EXPECT_FALSE(up.existed);
  auto found = tree.find(10);
  ASSERT_NE(found.record, nullptr);
  EXPECT_EQ(found.record->size, 100u);
}

TEST(BTree, UpsertOverwrites) {
  BPlusTree tree;
  tree.upsert(5, rec(1));
  auto up = tree.upsert(5, rec(2));
  EXPECT_TRUE(up.existed);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.find(5).record->size, 2u);
}

TEST(BTree, SplitsGrowHeightLogarithmically) {
  BPlusTree tree;
  constexpr std::uint64_t kN = 100'000;
  for (std::uint64_t k = 0; k < kN; ++k) tree.upsert(k, rec(k));
  EXPECT_EQ(tree.size(), kN);
  // Fan-out 64: height should be ~ log64(100k) + 1 = 4-ish, never > 6.
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 6u);
  tree.check_invariants();
  for (std::uint64_t k = 0; k < kN; k += 997) {
    auto f = tree.find(k);
    ASSERT_NE(f.record, nullptr);
    ASSERT_EQ(f.record->size, k);
    ASSERT_EQ(f.depth, tree.height());
  }
}

TEST(BTree, ReverseAndShuffledInsertionOrders) {
  for (const int mode : {0, 1}) {
    BPlusTree tree;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; k < 5000; ++k) keys.push_back(k);
    if (mode == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      util::Rng rng(4);
      for (std::size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.uniform(0, i - 1)]);
      }
    }
    for (const auto k : keys) tree.upsert(k, rec(k));
    tree.check_invariants();
    for (std::uint64_t k = 0; k < 5000; ++k) {
      ASSERT_NE(tree.find(k).record, nullptr);
    }
  }
}

TEST(BTree, ForEachVisitsInSortedOrder) {
  BPlusTree tree;
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) tree.upsert(rng.uniform(0, 100'000), rec(1));
  std::vector<std::uint64_t> keys;
  tree.for_each([&](std::uint64_t k, const Record&) { keys.push_back(k); });
  EXPECT_EQ(keys.size(), tree.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(BTree, EraseRemovesOnlyTarget) {
  BPlusTree tree;
  for (std::uint64_t k = 0; k < 1000; ++k) tree.upsert(k, rec(k));
  EXPECT_TRUE(tree.erase(500).erased);
  EXPECT_FALSE(tree.erase(500).erased);
  EXPECT_EQ(tree.size(), 999u);
  EXPECT_EQ(tree.find(500).record, nullptr);
  EXPECT_NE(tree.find(499).record, nullptr);
  EXPECT_NE(tree.find(501).record, nullptr);
}

TEST(BTree, RandomizedChurnAgainstReferenceModel) {
  BPlusTree tree;
  std::map<std::uint64_t, std::uint64_t> model;
  util::Rng rng(21);
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t key = rng.uniform(0, 2000);
    switch (rng.uniform(0, 2)) {
      case 0: {
        tree.upsert(key, rec(key * 2));
        model[key] = key * 2;
        break;
      }
      case 1:
        ASSERT_EQ(tree.erase(key).erased, model.erase(key) > 0);
        break;
      default: {
        auto f = tree.find(key);
        const auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_EQ(f.record, nullptr);
        } else {
          ASSERT_NE(f.record, nullptr);
          ASSERT_EQ(f.record->size, it->second);
        }
      }
    }
    ASSERT_EQ(tree.size(), model.size());
  }
  // Final full cross-check plus leaf-chain verification. The invariant
  // checker tolerates lazily underfull leaves but not ordering violations.
  std::vector<std::uint64_t> keys;
  tree.for_each([&](std::uint64_t k, const Record&) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), model.size());
  auto it = model.begin();
  for (const auto k : keys) {
    ASSERT_EQ(k, it->first);
    ++it;
  }
}

TEST(BTree, DepthReportedMatchesHeight) {
  BPlusTree tree;
  for (std::uint64_t k = 0; k < 10'000; ++k) tree.upsert(k, rec(1));
  EXPECT_EQ(tree.find(42).depth, tree.height());
  EXPECT_EQ(tree.erase(42).depth, tree.height());
}

TEST(BTree, OverheadScalesWithNodeCount) {
  BPlusTree tree;
  const auto empty = tree.overhead_bytes();
  for (std::uint64_t k = 0; k < 10'000; ++k) tree.upsert(k, rec(1));
  EXPECT_GT(tree.overhead_bytes(), empty * 10);
  EXPECT_GT(tree.node_count(), 100u);
}

}  // namespace
}  // namespace mnemo::kvstore::dynastore
