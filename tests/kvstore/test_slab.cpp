#include "kvstore/cachet/slab.hpp"

#include <gtest/gtest.h>

namespace mnemo::kvstore::cachet {
namespace {

TEST(Slab, ClassChunkSizesGrowGeometrically) {
  SlabAllocator slabs;
  ASSERT_GT(slabs.class_count(), 10u);
  std::uint64_t prev = 0;
  for (std::size_t c = 0; c < slabs.class_count(); ++c) {
    const auto stats = slabs.class_stats(c);
    EXPECT_GT(stats.chunk_size, prev);
    EXPECT_EQ(stats.chunk_size % 8, 0u) << "chunks are 8-byte aligned";
    EXPECT_GE(stats.chunk_size, SlabAllocator::kMinChunk);
    EXPECT_LE(stats.chunk_size, SlabAllocator::kPageBytes);
    prev = stats.chunk_size;
  }
}

TEST(Slab, ClassForPicksSmallestFittingChunk) {
  SlabAllocator slabs;
  for (const std::uint64_t item : {1ULL, 100ULL, 5000ULL, 100'000ULL}) {
    const std::size_t cls = slabs.class_for(item);
    ASSERT_LT(cls, slabs.class_count());
    EXPECT_GE(slabs.chunk_bytes(cls, item),
              item + SlabAllocator::kItemHeader);
    if (cls > 0) {
      EXPECT_LT(slabs.class_stats(cls - 1).chunk_size,
                item + SlabAllocator::kItemHeader);
    }
  }
}

TEST(Slab, HugeItemsUsePageRoundedAllocations) {
  SlabAllocator slabs;
  const std::uint64_t huge = 3 * SlabAllocator::kPageBytes + 5;
  const std::size_t cls = slabs.class_for(huge);
  EXPECT_EQ(cls, slabs.class_count());
  EXPECT_EQ(slabs.chunk_bytes(cls, huge), 4 * SlabAllocator::kPageBytes);
  slabs.take(cls, huge);
  EXPECT_EQ(slabs.pages_allocated_bytes(), 4 * SlabAllocator::kPageBytes);
  slabs.give_back(cls, huge);
  EXPECT_EQ(slabs.pages_allocated_bytes(), 0u);
}

TEST(Slab, TakeAllocatesPagesOnDemand) {
  SlabAllocator slabs;
  const std::size_t cls = slabs.class_for(100);
  const auto before = slabs.class_stats(cls);
  EXPECT_EQ(before.pages, 0u);
  slabs.take(cls, 100);
  const auto after = slabs.class_stats(cls);
  EXPECT_EQ(after.pages, 1u);
  EXPECT_EQ(after.used_chunks, 1u);
  EXPECT_EQ(after.free_chunks,
            SlabAllocator::kPageBytes / after.chunk_size - 1);
}

TEST(Slab, GiveBackRefillsFreeList) {
  SlabAllocator slabs;
  const std::size_t cls = slabs.class_for(100);
  slabs.take(cls, 100);
  slabs.take(cls, 100);
  slabs.give_back(cls, 100);
  const auto stats = slabs.class_stats(cls);
  EXPECT_EQ(stats.used_chunks, 1u);
  EXPECT_EQ(stats.pages, 1u) << "pages are never returned, like memcached";
}

TEST(Slab, SlackIsPagesMinusLiveChunks) {
  SlabAllocator slabs;
  const std::size_t cls = slabs.class_for(100);
  slabs.take(cls, 100);
  const auto stats = slabs.class_stats(cls);
  EXPECT_EQ(slabs.slack_bytes(),
            SlabAllocator::kPageBytes - stats.chunk_size);
  EXPECT_EQ(slabs.used_chunk_bytes(), stats.chunk_size);
}

TEST(Slab, ManyTakesSpanMultiplePages) {
  SlabAllocator slabs;
  const std::size_t cls = slabs.class_for(100'000);
  const auto per_page =
      SlabAllocator::kPageBytes / slabs.class_stats(cls).chunk_size;
  for (std::uint64_t i = 0; i < per_page + 1; ++i) slabs.take(cls, 100'000);
  EXPECT_EQ(slabs.class_stats(cls).pages, 2u);
}

}  // namespace
}  // namespace mnemo::kvstore::cachet
