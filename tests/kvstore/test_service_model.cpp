// Tests of the calibrated service-time model: the architectural contrasts
// the paper observes between Redis, Memcached and DynamoDB must emerge
// from the profiles (DESIGN.md §3).

#include <gtest/gtest.h>

#include "core/sensitivity_engine.hpp"
#include "kvstore/factory.hpp"
#include "workload/suite.hpp"

namespace mnemo::kvstore {
namespace {

core::PerfBaselines baselines_for(StoreKind kind,
                                  const workload::Trace& trace) {
  core::SensitivityConfig cfg;
  cfg.store = kind;
  cfg.repeats = 1;
  core::SensitivityEngine engine(cfg);
  return engine.baselines(trace);
}

workload::Trace thumbnail_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("timeline");
  spec.key_count = 2'000;
  spec.request_count = 20'000;
  return workload::Trace::generate(spec);
}

TEST(ServiceModel, SensitivityOrderingMatchesPaper) {
  const auto trace = thumbnail_trace();
  const double cachet =
      baselines_for(StoreKind::kCachet, trace).sensitivity();
  const double vermilion =
      baselines_for(StoreKind::kVermilion, trace).sensitivity();
  const double dynastore =
      baselines_for(StoreKind::kDynaStore, trace).sensitivity();
  // Paper Fig 8b / Fig 9: Memcached barely influenced, Redis in between,
  // DynamoDB severely impacted.
  EXPECT_LT(cachet, vermilion);
  EXPECT_LT(vermilion, dynastore);
  EXPECT_LT(cachet, 0.15) << "Memcached-like: barely influenced";
  EXPECT_GT(vermilion, 0.25) << "Redis-like: ~40% in the paper";
  EXPECT_LT(vermilion, 0.60);
  EXPECT_GT(dynastore, 0.60) << "DynamoDB-like: severely impacted";
}

TEST(ServiceModel, WritesLessExposedToSlowMemThanReads) {
  // Paper Fig 5b: write-heavy workloads are less impacted by SlowMem.
  workload::WorkloadSpec readonly = workload::paper_workload("timeline");
  readonly.key_count = 2'000;
  readonly.request_count = 20'000;
  workload::WorkloadSpec writeheavy = readonly;
  writeheavy.read_fraction = 0.0;
  writeheavy.name = "allwrites";

  const auto ro = baselines_for(StoreKind::kVermilion,
                                workload::Trace::generate(readonly));
  const auto wh = baselines_for(StoreKind::kVermilion,
                                workload::Trace::generate(writeheavy));
  EXPECT_LT(wh.sensitivity(), ro.sensitivity());
}

TEST(ServiceModel, SmallRecordsLessSensitiveThanBig) {
  // Paper Fig 5c: big records' knee is bigger.
  workload::WorkloadSpec big = workload::paper_workload("timeline");
  big.key_count = 2'000;
  big.request_count = 20'000;
  workload::WorkloadSpec small = big;
  small.record_size = workload::RecordSizeType::kPhotoCaption;
  small.name = "small";

  const auto big_b = baselines_for(StoreKind::kVermilion,
                                   workload::Trace::generate(big));
  const auto small_b = baselines_for(StoreKind::kVermilion,
                                     workload::Trace::generate(small));
  EXPECT_LT(small_b.sensitivity(), big_b.sensitivity());
}

TEST(ServiceModel, ReadDeltaPositiveForAllStores) {
  const auto trace = thumbnail_trace();
  for (const StoreKind kind : kAllStoreKinds) {
    const auto b = baselines_for(kind, trace);
    EXPECT_GT(b.read_delta_ns(), 0.0) << to_string(kind);
    EXPECT_GT(b.fast.throughput_ops, b.slow.throughput_ops)
        << to_string(kind);
  }
}

TEST(ServiceProfile, DefaultsExposeArchitecturalContrasts) {
  const ServiceProfile& redis = default_profile(StoreKind::kVermilion);
  const ServiceProfile& memc = default_profile(StoreKind::kCachet);
  const ServiceProfile& dyna = default_profile(StoreKind::kDynaStore);
  EXPECT_GT(memc.bandwidth_overlap, 0.8) << "Cachet overlaps transfers";
  EXPECT_LT(redis.bandwidth_overlap, 0.1);
  EXPECT_GT(dyna.read_stream_amplification,
            redis.read_stream_amplification);
  EXPECT_GT(dyna.latency_sensitivity, memc.latency_sensitivity);
}

TEST(ServiceProfile, Names) {
  EXPECT_EQ(to_string(StoreKind::kVermilion), "vermilion");
  EXPECT_EQ(paper_analogue(StoreKind::kVermilion), "Redis");
  EXPECT_EQ(paper_analogue(StoreKind::kCachet), "Memcached");
  EXPECT_EQ(paper_analogue(StoreKind::kDynaStore), "DynamoDB");
}

}  // namespace
}  // namespace mnemo::kvstore
