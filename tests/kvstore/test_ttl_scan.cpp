// TTL expiration (all engines) and DynaStore range scans.

#include <gtest/gtest.h>

#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dynastore/dynastore.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"

namespace mnemo::kvstore {
namespace {

using util::kMiB;

hybridmem::EmulationProfile test_profile() {
  return hybridmem::paper_testbed_with_capacity(64 * kMiB);
}

StoreConfig quiet_config() {
  StoreConfig cfg;
  cfg.deterministic_service = true;
  return cfg;
}

class TtlStore : public ::testing::TestWithParam<StoreKind> {
 protected:
  hybridmem::HybridMemory memory_{test_profile()};
};

TEST_P(TtlStore, RecordsExpireLazilyOnGet) {
  auto store = make_store(GetParam(), memory_, quiet_config());
  // TTL shorter than one op's service time: dead on the next fetch.
  ASSERT_TRUE(store->put_ttl(1, 1000, /*ttl_ns=*/1.0).ok);
  // Advance the store clock past the expiry with unrelated work.
  store->put(2, 1000);
  const OpResult got = store->get(1);
  EXPECT_FALSE(got.ok) << "expired record must read as a miss";
  EXPECT_EQ(store->stats().expirations, 1u);
  EXPECT_FALSE(store->contains(1)) << "lazy reclamation removes the record";
  // The slot is reusable.
  EXPECT_TRUE(store->put(1, 1000).ok);
  EXPECT_TRUE(store->get(1).ok);
}

TEST_P(TtlStore, LongTtlDoesNotExpire) {
  auto store = make_store(GetParam(), memory_, quiet_config());
  ASSERT_TRUE(store->put_ttl(1, 1000, /*ttl_ns=*/1e15).ok);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->get(1).ok);
  }
  EXPECT_EQ(store->stats().expirations, 0u);
}

TEST_P(TtlStore, PlainPutNeverExpires) {
  auto store = make_store(GetParam(), memory_, quiet_config());
  ASSERT_TRUE(store->put(1, 1000).ok);
  for (int i = 0; i < 50; ++i) store->put(2, 50'000);  // burn clock
  EXPECT_TRUE(store->get(1).ok);
}

TEST_P(TtlStore, ExpiredRecordFreesNodeMemory) {
  auto store = make_store(GetParam(), memory_, quiet_config());
  const auto before = memory_.total_used_bytes();
  ASSERT_TRUE(store->put_ttl(1, 10'000, 1.0).ok);
  store->put(2, 100);  // advance clock
  (void)store->get(1);  // triggers reclamation
  // Only key 2 (plus bounded engine overhead deltas) remains relative to
  // the pre-TTL baseline; the 10 kB payload accounting must be gone.
  // (Cachet keeps its slab page, so compare against payload bytes only.)
  EXPECT_LT(memory_.total_used_bytes(), before + 10'000 + 2 * kMiB);
  EXPECT_FALSE(store->contains(1));
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, TtlStore,
    ::testing::Values(StoreKind::kVermilion, StoreKind::kCachet,
                      StoreKind::kDynaStore),
    [](const auto& info) { return std::string(to_string(info.param)); });

// -------------------------------------------------------------- scans

class DynaScan : public ::testing::Test {
 protected:
  hybridmem::HybridMemory memory_{test_profile()};
  DynaStore store_{memory_, quiet_config()};
};

TEST_F(DynaScan, ReturnsKeysInOrderFromStart) {
  for (std::uint64_t k = 0; k < 100; k += 2) store_.put(k, 100);
  const auto result = store_.scan(10, 5);
  const std::vector<std::uint64_t> expected = {10, 12, 14, 16, 18};
  EXPECT_EQ(result.keys, expected);
  EXPECT_GT(result.service_ns, 0.0);
}

TEST_F(DynaScan, StartBetweenKeysRoundsUp) {
  for (std::uint64_t k = 0; k < 100; k += 10) store_.put(k, 100);
  const auto result = store_.scan(11, 3);
  const std::vector<std::uint64_t> expected = {20, 30, 40};
  EXPECT_EQ(result.keys, expected);
}

TEST_F(DynaScan, LimitZeroAndPastEnd) {
  store_.put(5, 100);
  EXPECT_TRUE(store_.scan(0, 0).keys.empty());
  EXPECT_TRUE(store_.scan(6, 10).keys.empty());
}

TEST_F(DynaScan, SkipsExpiredItems) {
  store_.put(1, 100);
  store_.put_ttl(2, 100, 1.0);
  store_.put(3, 100);
  store_.put(4, 100);  // advance clock past key 2's TTL
  const auto result = store_.scan(1, 10);
  const std::vector<std::uint64_t> expected = {1, 3, 4};
  EXPECT_EQ(result.keys, expected);
}

TEST_F(DynaScan, CostScalesWithItemsScanned) {
  for (std::uint64_t k = 0; k < 1000; ++k) store_.put(k, 10'000);
  memory_.drop_caches();
  const double small = store_.scan(0, 5).service_ns;
  memory_.drop_caches();
  const double large = store_.scan(0, 500).service_ns;
  // The fixed per-request CPU dominates the small scan; past that, cost
  // grows with the items streamed.
  EXPECT_GT(large, small * 5.0);
  EXPECT_GT(large - small, 400 * 2'000.0)
      << "each extra 10 kB item streams at least ~2 us from FastMem";
}

TEST_F(DynaScan, ScanIsCheaperPerItemThanPointGets) {
  for (std::uint64_t k = 0; k < 500; ++k) store_.put(k, 10'000);
  memory_.drop_caches();
  const auto scan = store_.scan(0, 100);
  ASSERT_EQ(scan.keys.size(), 100u);
  memory_.drop_caches();
  double gets_ns = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) gets_ns += store_.get(k).service_ns;
  EXPECT_LT(scan.service_ns, gets_ns)
      << "a leaf walk amortizes descent and per-op CPU";
}

}  // namespace
}  // namespace mnemo::kvstore
