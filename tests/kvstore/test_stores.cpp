#include <gtest/gtest.h>

#include <memory>

#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dynastore/dynastore.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"

namespace mnemo::kvstore {
namespace {

using hybridmem::EmulationProfile;
using hybridmem::HybridMemory;
using hybridmem::NodeId;
using util::kKiB;
using util::kMiB;

EmulationProfile test_profile(std::uint64_t node_bytes = 64 * kMiB) {
  return hybridmem::paper_testbed_with_capacity(node_bytes);
}

StoreConfig test_config(NodeId node = NodeId::kFast,
                        PayloadMode mode = PayloadMode::kSynthetic) {
  StoreConfig cfg;
  cfg.node = node;
  cfg.payload_mode = mode;
  cfg.deterministic_service = true;  // exact comparisons in unit tests
  return cfg;
}

class AnyStore : public ::testing::TestWithParam<StoreKind> {
 protected:
  HybridMemory memory_{test_profile()};
};

TEST_P(AnyStore, PutGetEraseSemantics) {
  auto store = make_store(GetParam(), memory_, test_config());
  EXPECT_FALSE(store->get(1).ok);
  EXPECT_TRUE(store->put(1, 4096).ok);
  EXPECT_TRUE(store->contains(1));
  EXPECT_EQ(store->record_count(), 1u);

  const OpResult got = store->get(1);
  EXPECT_TRUE(got.ok);
  EXPECT_GT(got.service_ns, 0.0);

  EXPECT_TRUE(store->erase(1).ok);
  EXPECT_FALSE(store->contains(1));
  EXPECT_FALSE(store->erase(1).ok);
  EXPECT_EQ(store->record_count(), 0u);
}

TEST_P(AnyStore, StatsCountOperations) {
  auto store = make_store(GetParam(), memory_, test_config());
  store->put(1, 100);
  store->put(2, 100);
  store->get(1);
  store->get(3);  // miss
  store->erase(2);
  const StoreStats& s = store->stats();
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_GT(s.busy_ns, 0.0);
  EXPECT_EQ(s.ops(), 5u);
}

TEST_P(AnyStore, MemoryAccountingFollowsRecords) {
  auto store = make_store(GetParam(), memory_, test_config());
  const auto before = memory_.node(NodeId::kFast).used_bytes();
  store->put(1, 10 * kKiB);
  store->put(2, 10 * kKiB);
  const auto after = memory_.node(NodeId::kFast).used_bytes();
  // At least the payload bytes land on the node (stores may round up —
  // Cachet's slab chunks — and add index overhead).
  EXPECT_GE(after - before, 20 * kKiB);
  store->erase(1);
  store->erase(2);
  if (GetParam() == StoreKind::kCachet) {
    // Memcached semantics: freed chunks return to the slab free list but
    // pages are never released, so node usage does not shrink.
    EXPECT_LE(memory_.node(NodeId::kFast).used_bytes(), after);
    EXPECT_EQ(store->record_count(), 0u);
  } else {
    EXPECT_LT(memory_.node(NodeId::kFast).used_bytes(), after);
  }
}

TEST_P(AnyStore, SlowNodeIsSlowerForBigRecords) {
  auto fast = make_store(GetParam(), memory_, test_config(NodeId::kFast));
  auto slow = make_store(GetParam(), memory_, test_config(NodeId::kSlow));
  // > LLC bypass threshold so placement is what matters.
  fast->put(1, 100 * kKiB);
  slow->put(2, 100 * kKiB);
  const double fast_ns = fast->get(1).service_ns;
  const double slow_ns = slow->get(2).service_ns;
  EXPECT_GT(slow_ns, fast_ns);
}

TEST_P(AnyStore, StoredPayloadRoundTripsWithChecksum) {
  auto store = make_store(GetParam(), memory_,
                          test_config(NodeId::kFast, PayloadMode::kStored));
  // Checksums are MNEMO_ASSERTed inside get(); surviving is the test.
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(store->put(k, 1000 + k * 13).ok);
  }
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(store->get(k).ok);
  }
}

TEST_P(AnyStore, UpdateChangesSizeAccounting) {
  auto store = make_store(GetParam(), memory_, test_config());
  store->put(1, 10 * kKiB);
  const auto small = memory_.total_used_bytes();
  EXPECT_TRUE(store->put(1, 40 * kKiB).ok);
  EXPECT_GT(memory_.total_used_bytes(), small);
  EXPECT_EQ(store->record_count(), 1u);
}

TEST_P(AnyStore, OverheadBytesReported) {
  auto store = make_store(GetParam(), memory_, test_config());
  for (std::uint64_t k = 0; k < 200; ++k) store->put(k, 1000);
  EXPECT_GT(store->overhead_bytes(), 0u);
}

TEST_P(AnyStore, DeterministicServiceTimesAreReproducible) {
  auto run = [&](HybridMemory& mem) {
    auto store = make_store(GetParam(), mem, test_config());
    double total = 0.0;
    for (std::uint64_t k = 0; k < 100; ++k) total += store->put(k, 5000).service_ns;
    for (std::uint64_t k = 0; k < 100; ++k) total += store->get(k).service_ns;
    return total;
  };
  HybridMemory mem_a(test_profile());
  HybridMemory mem_b(test_profile());
  EXPECT_DOUBLE_EQ(run(mem_a), run(mem_b));
}

TEST_P(AnyStore, JitterChangesTimingButNotResults) {
  StoreConfig noisy = test_config();
  noisy.deterministic_service = false;
  auto store = make_store(GetParam(), memory_, noisy);
  store->put(1, 5000);
  const OpResult a = store->get(1);
  const OpResult b = store->get(1);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_NE(a.service_ns, b.service_ns) << "jitter should vary timing";
}

TEST_P(AnyStore, DestructorReleasesAllMemory) {
  const auto baseline = memory_.total_used_bytes();
  {
    auto store = make_store(GetParam(), memory_, test_config());
    for (std::uint64_t k = 0; k < 100; ++k) store->put(k, 10 * kKiB);
    EXPECT_GT(memory_.total_used_bytes(), baseline);
  }
  EXPECT_EQ(memory_.total_used_bytes(), baseline)
      << "store teardown must return every byte to the node";
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, AnyStore,
    ::testing::Values(StoreKind::kVermilion, StoreKind::kCachet,
                      StoreKind::kDynaStore),
    [](const auto& info) { return std::string(to_string(info.param)); });

// ------------------------------------------------- store-specific corners

TEST(Cachet, EvictsFromLruWhenNodeIsFull) {
  HybridMemory memory(test_profile(4 * kMiB));
  auto store = make_store(StoreKind::kCachet, memory, test_config());
  // 1 MiB pages: the node fits ~4 slab pages; inserting many 100 KiB
  // items must trigger LRU evictions rather than failures.
  std::uint64_t inserted = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (store->put(k, 100 * kKiB).ok) ++inserted;
  }
  EXPECT_EQ(inserted, 100u);
  EXPECT_GT(store->stats().evictions, 0u);
  EXPECT_LT(store->record_count(), 100u);
  // The most recently inserted key survived; the very first was evicted.
  EXPECT_TRUE(store->contains(99));
  EXPECT_FALSE(store->contains(0));
}

TEST(Vermilion, PutFailsWhenNodeFullWithoutEviction) {
  HybridMemory memory(test_profile(1 * kMiB));
  auto store = make_store(StoreKind::kVermilion, memory, test_config());
  bool failed = false;
  for (std::uint64_t k = 0; k < 20 && !failed; ++k) {
    failed = !store->put(k, 100 * kKiB).ok;
  }
  EXPECT_TRUE(failed) << "Redis-like stores reject writes beyond capacity";
}

TEST(DynaStore, JournalGrowsWithWrites) {
  HybridMemory memory(test_profile());
  auto base = make_store(StoreKind::kDynaStore, memory, test_config());
  auto* store = dynamic_cast<DynaStore*>(base.get());
  ASSERT_NE(store, nullptr);
  for (std::uint64_t k = 0; k < 100; ++k) store->put(k, 10 * kKiB);
  EXPECT_EQ(store->journal().appends(), 100u);
  EXPECT_GT(store->journal().bytes(), 100 * 10 * kKiB);
  EXPECT_GE(store->tree().height(), 1u);
}

TEST(DynaStore, GetDepthCostGrowsWithDataset) {
  HybridMemory memory(test_profile(512 * kMiB));
  auto store = make_store(StoreKind::kDynaStore, memory, test_config());
  store->put(0, 1024);
  const double shallow = store->get(0).service_ns;
  for (std::uint64_t k = 1; k < 50'000; ++k) store->put(k, 8);
  memory.drop_caches();
  const double deep = store->get(0).service_ns;
  EXPECT_GT(deep, shallow * 0.9)
      << "deeper trees cannot get cheaper to search";
}

}  // namespace
}  // namespace mnemo::kvstore
