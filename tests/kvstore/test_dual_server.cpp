#include "kvstore/dual_server.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "workload/suite.hpp"

namespace mnemo::kvstore {
namespace {

using hybridmem::NodeId;
using hybridmem::Placement;

workload::Trace small_trace(double read_fraction = 1.0) {
  workload::WorkloadSpec spec;
  spec.name = "dual";
  spec.distribution = workload::DistributionKind::kUniform;
  spec.read_fraction = read_fraction;
  spec.record_size = workload::RecordSizeType::kPhotoCaption;
  spec.key_count = 200;
  spec.request_count = 2'000;
  spec.seed = 3;
  return workload::Trace::generate(spec);
}

StoreConfig quiet_config() {
  StoreConfig cfg;
  cfg.deterministic_service = true;
  return cfg;
}

class DualServerTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  hybridmem::HybridMemory memory_{hybridmem::paper_testbed_with_capacity(
      64ULL * 1024 * 1024)};
};

TEST_P(DualServerTest, PopulateSplitsDatasetByPlacement) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  const Placement placement = Placement::from_order(order, 50);
  servers.populate(trace, placement);
  EXPECT_EQ(servers.fast().record_count(), 50u);
  EXPECT_EQ(servers.slow().record_count(), 150u);
  EXPECT_EQ(servers.fast().node(), NodeId::kFast);
  EXPECT_EQ(servers.slow().node(), NodeId::kSlow);
}

TEST_P(DualServerTest, ExecuteRoutesByKeyPlacement) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  Placement placement(trace.key_count(), NodeId::kSlow);
  placement.set(7, NodeId::kFast);
  servers.populate(trace, placement);

  const auto fast_gets_before = servers.fast().stats().gets;
  servers.execute(workload::Request{7, workload::OpType::kRead});
  EXPECT_EQ(servers.fast().stats().gets, fast_gets_before + 1);

  const auto slow_gets_before = servers.slow().stats().gets;
  servers.execute(workload::Request{8, workload::OpType::kRead});
  EXPECT_EQ(servers.slow().stats().gets, slow_gets_before + 1);
}

TEST_P(DualServerTest, UpdatesStayOnAssignedServer) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace(0.0);  // all updates
  Placement placement(trace.key_count(), NodeId::kSlow);
  servers.populate(trace, placement);
  for (const auto& req : trace.requests()) {
    ASSERT_TRUE(servers.execute(req).ok);
  }
  EXPECT_EQ(servers.fast().record_count(), 0u);
  EXPECT_EQ(servers.slow().record_count(), trace.key_count());
}

TEST_P(DualServerTest, CombinedStatsSumBothInstances) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  servers.populate(trace, Placement::from_order(order, 100));
  for (const auto& req : trace.requests()) servers.execute(req);
  const StoreStats combined = servers.combined_stats();
  EXPECT_EQ(combined.gets,
            servers.fast().stats().gets + servers.slow().stats().gets);
  EXPECT_EQ(combined.puts,
            servers.fast().stats().puts + servers.slow().stats().puts);
  EXPECT_DOUBLE_EQ(
      combined.busy_ns,
      servers.fast().stats().busy_ns + servers.slow().stats().busy_ns);
  EXPECT_EQ(combined.gets, trace.total_reads());
}

TEST_P(DualServerTest, AllRequestsSucceedAfterPopulate) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace(0.5);
  Placement placement(trace.key_count(), NodeId::kFast);
  servers.populate(trace, placement);
  for (const auto& req : trace.requests()) {
    ASSERT_TRUE(servers.execute(req).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, DualServerTest,
    ::testing::Values(StoreKind::kVermilion, StoreKind::kCachet,
                      StoreKind::kDynaStore),
    [](const auto& info) { return std::string(to_string(info.param)); });

}  // namespace
}  // namespace mnemo::kvstore
