#include "kvstore/dual_server.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "faultinject/fault_plan.hpp"
#include "workload/suite.hpp"

namespace mnemo::kvstore {
namespace {

using hybridmem::NodeId;
using hybridmem::Placement;

workload::Trace small_trace(double read_fraction = 1.0) {
  workload::WorkloadSpec spec;
  spec.name = "dual";
  spec.distribution = workload::DistributionKind::kUniform;
  spec.read_fraction = read_fraction;
  spec.record_size = workload::RecordSizeType::kPhotoCaption;
  spec.key_count = 200;
  spec.request_count = 2'000;
  spec.seed = 3;
  return workload::Trace::generate(spec);
}

StoreConfig quiet_config() {
  StoreConfig cfg;
  cfg.deterministic_service = true;
  return cfg;
}

class DualServerTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  hybridmem::HybridMemory memory_{hybridmem::paper_testbed_with_capacity(
      64ULL * 1024 * 1024)};
};

TEST_P(DualServerTest, PopulateSplitsDatasetByPlacement) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  const Placement placement = Placement::from_order(order, 50);
  ASSERT_TRUE(servers.populate(trace, placement).ok());
  EXPECT_EQ(servers.fast().record_count(), 50u);
  EXPECT_EQ(servers.slow().record_count(), 150u);
  EXPECT_EQ(servers.fast().node(), NodeId::kFast);
  EXPECT_EQ(servers.slow().node(), NodeId::kSlow);
}

TEST_P(DualServerTest, ExecuteRoutesByKeyPlacement) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  Placement placement(trace.key_count(), NodeId::kSlow);
  placement.set(7, NodeId::kFast);
  ASSERT_TRUE(servers.populate(trace, placement).ok());

  const auto fast_gets_before = servers.fast().stats().gets;
  ASSERT_TRUE(
      servers.execute(workload::Request{7, workload::OpType::kRead}).ok());
  EXPECT_EQ(servers.fast().stats().gets, fast_gets_before + 1);

  const auto slow_gets_before = servers.slow().stats().gets;
  ASSERT_TRUE(
      servers.execute(workload::Request{8, workload::OpType::kRead}).ok());
  EXPECT_EQ(servers.slow().stats().gets, slow_gets_before + 1);
}

TEST_P(DualServerTest, UpdatesStayOnAssignedServer) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace(0.0);  // all updates
  Placement placement(trace.key_count(), NodeId::kSlow);
  ASSERT_TRUE(servers.populate(trace, placement).ok());
  for (const auto& req : trace.requests()) {
    ASSERT_TRUE(servers.execute(req).value().ok);
  }
  EXPECT_EQ(servers.fast().record_count(), 0u);
  EXPECT_EQ(servers.slow().record_count(), trace.key_count());
}

TEST_P(DualServerTest, CombinedStatsSumBothInstances) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  ASSERT_TRUE(servers.populate(trace, Placement::from_order(order, 100)).ok());
  for (const auto& req : trace.requests()) {
    ASSERT_TRUE(servers.execute(req).ok());
  }
  const StoreStats combined = servers.combined_stats();
  EXPECT_EQ(combined.gets,
            servers.fast().stats().gets + servers.slow().stats().gets);
  EXPECT_EQ(combined.puts,
            servers.fast().stats().puts + servers.slow().stats().puts);
  EXPECT_DOUBLE_EQ(
      combined.busy_ns,
      servers.fast().stats().busy_ns + servers.slow().stats().busy_ns);
  EXPECT_EQ(combined.gets, trace.total_reads());
}

TEST_P(DualServerTest, AllRequestsSucceedAfterPopulate) {
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace(0.5);
  Placement placement(trace.key_count(), NodeId::kFast);
  ASSERT_TRUE(servers.populate(trace, placement).ok());
  for (const auto& req : trace.requests()) {
    ASSERT_TRUE(servers.execute(req).value().ok);
  }
}

TEST_P(DualServerTest, PopulateErrorCarriesKeyAndCapacity) {
  // A platform whose SlowMem cannot hold the whole dataset: the typed
  // error must name the first key that did not fit and the node's
  // remaining capacity at that point.
  hybridmem::EmulationProfile tiny = hybridmem::paper_testbed_with_capacity(
      64ULL * 1024 * 1024);
  tiny.slow.capacity_bytes = 4 * 1024;
  hybridmem::HybridMemory memory(tiny);
  DualServer servers(memory, GetParam(), quiet_config());
  const auto trace = small_trace();
  const util::Status st =
      servers.populate(trace, Placement(trace.key_count(), NodeId::kSlow));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kCapacityExhausted);
  EXPECT_NE(st.error().key, util::Error::kNoKey);
  EXPECT_EQ(st.error().requested_bytes, trace.size_of(st.error().key));
  EXPECT_LT(st.error().available_bytes, tiny.slow.capacity_bytes);
  EXPECT_NE(st.error().to_string().find("capacity_exhausted"),
            std::string::npos);
}

TEST_P(DualServerTest, MoveKeyRetriesTransientFaultsWithBackoff) {
  // transient rate 1.0 with recover 1.0: the migration read faults every
  // draw but always recovers on the first retry — move_key succeeds and
  // its cost includes the retry and backoff surcharge.
  faultinject::FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_recover_prob = 1.0;
  memory_.arm_faults(plan, 7);
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  ASSERT_TRUE(
      servers.populate(trace, Placement(trace.key_count(), NodeId::kSlow))
          .ok());
  memory_.drop_caches();  // faults fire on LLC misses only
  const auto before = memory_.fault_stats();
  const util::Result<double> moved = servers.move_key(5, NodeId::kFast);
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(moved.value(), 0.0);
  EXPECT_EQ(servers.placement().node_of(5), NodeId::kFast);
  EXPECT_GT(memory_.fault_stats().transient_retries,
            before.transient_retries);
}

TEST_P(DualServerTest, MoveKeyExhaustsRetriesIntoTypedError) {
  // recover 0.0: every migration read fails its whole retry budget, so the
  // bounded outer retry loop gives up with kRetriesExhausted and the key
  // stays on SlowMem.
  faultinject::FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_recover_prob = 0.0;
  plan.transient_max_retries = 2;
  memory_.arm_faults(plan, 7);
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  ASSERT_TRUE(
      servers.populate(trace, Placement(trace.key_count(), NodeId::kSlow))
          .ok());
  memory_.drop_caches();  // faults fire on LLC misses only
  const util::Result<double> moved = servers.move_key(5, NodeId::kFast);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.error().code, util::ErrorCode::kRetriesExhausted);
  EXPECT_EQ(moved.error().key, 5u);
  EXPECT_GT(moved.error().attempts, plan.transient_max_retries);
  EXPECT_EQ(servers.placement().node_of(5), NodeId::kSlow);
}

TEST_P(DualServerTest, PoisonedReadRemapsKeyToFastMem) {
  // poison rate 1.0: every SlowMem key is poisoned, so the first read
  // forces a remap to FastMem and succeeds with the fault recorded.
  faultinject::FaultPlan plan;
  plan.poison_rate = 1.0;
  memory_.arm_faults(plan, 11);
  DualServer servers(memory_, GetParam(), quiet_config());
  const auto trace = small_trace();
  ASSERT_TRUE(
      servers.populate(trace, Placement(trace.key_count(), NodeId::kSlow))
          .ok());
  memory_.drop_caches();  // faults fire on LLC misses only
  const util::Result<OpResult> r =
      servers.execute(workload::Request{9, workload::OpType::kRead});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ok);
  EXPECT_EQ(r.value().fault, hybridmem::FaultKind::kPoisoned);
  EXPECT_EQ(servers.placement().node_of(9), NodeId::kFast);
  EXPECT_GT(memory_.fault_stats().poison_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, DualServerTest,
    ::testing::Values(StoreKind::kVermilion, StoreKind::kCachet,
                      StoreKind::kDynaStore),
    [](const auto& info) { return std::string(to_string(info.param)); });

}  // namespace
}  // namespace mnemo::kvstore
