// Property tests: all three store architectures implement identical
// key-value semantics. A long randomized op stream is applied to each
// store and to a reference std::map model; observable behaviour (hit or
// miss, record counts, sizes) must match the model exactly, and therefore
// match across stores.

#include <gtest/gtest.h>

#include <map>

#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore {
namespace {

struct Model {
  std::map<std::uint64_t, std::uint64_t> data;  // key -> size
};

class StoreSemantics
    : public ::testing::TestWithParam<std::tuple<StoreKind, std::uint64_t>> {
};

TEST_P(StoreSemantics, MatchesReferenceModelUnderChurn) {
  const auto [kind, seed] = GetParam();
  hybridmem::HybridMemory memory(
      hybridmem::paper_testbed_with_capacity(256 * util::kMiB));
  StoreConfig cfg;
  cfg.deterministic_service = true;
  cfg.payload_mode = PayloadMode::kStored;  // exercises checksums too
  auto store = make_store(kind, memory, cfg);
  Model model;
  util::Rng rng(seed);

  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.uniform(0, 299);
    switch (rng.uniform(0, 3)) {
      case 0: {  // put
        const std::uint64_t size = 64 + rng.uniform(0, 4000);
        const OpResult r = store->put(key, size);
        ASSERT_TRUE(r.ok);
        model.data[key] = size;
        break;
      }
      case 1: {  // get
        const OpResult r = store->get(key);
        ASSERT_EQ(r.ok, model.data.contains(key)) << "op " << i;
        break;
      }
      case 2: {  // erase
        const OpResult r = store->erase(key);
        ASSERT_EQ(r.ok, model.data.erase(key) > 0) << "op " << i;
        break;
      }
      default: {  // containment probe
        ASSERT_EQ(store->contains(key), model.data.contains(key));
      }
    }
    ASSERT_EQ(store->record_count(), model.data.size());
  }

  // Final sweep: every model key is retrievable, every other key misses.
  for (std::uint64_t key = 0; key < 300; ++key) {
    ASSERT_EQ(store->get(key).ok, model.data.contains(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, StoreSemantics,
    ::testing::Combine(::testing::Values(StoreKind::kVermilion,
                                         StoreKind::kCachet,
                                         StoreKind::kDynaStore),
                       ::testing::Values(1u, 42u, 0xfeedu)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(StoreSemantics, AllStoresAgreeOnTheSameOpStream) {
  // One platform per store: record object IDs are key-based, so stores
  // sharing an address space would collide (by design — a key lives on
  // exactly one server of a deployment).
  StoreConfig cfg;
  cfg.deterministic_service = true;
  std::vector<std::unique_ptr<hybridmem::HybridMemory>> memories;
  std::vector<std::unique_ptr<KeyValueStore>> stores;
  for (const StoreKind kind : kAllStoreKinds) {
    memories.push_back(std::make_unique<hybridmem::HybridMemory>(
        hybridmem::paper_testbed_with_capacity(256 * util::kMiB)));
    stores.push_back(make_store(kind, *memories.back(), cfg));
  }
  util::Rng rng(7);
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t key = rng.uniform(0, 99);
    const std::uint64_t op = rng.uniform(0, 2);
    const std::uint64_t size = 64 + rng.uniform(0, 1000);
    bool first_ok = false;
    for (std::size_t s = 0; s < stores.size(); ++s) {
      OpResult r;
      switch (op) {
        case 0:
          r = stores[s]->put(key, size);
          break;
        case 1:
          r = stores[s]->get(key);
          break;
        default:
          r = stores[s]->erase(key);
      }
      if (s == 0) {
        first_ok = r.ok;
      } else {
        ASSERT_EQ(r.ok, first_ok)
            << "op " << i << " diverged on " << stores[s]->name();
      }
    }
  }
}

}  // namespace
}  // namespace mnemo::kvstore
