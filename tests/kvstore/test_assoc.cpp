#include "kvstore/cachet/assoc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace mnemo::kvstore::cachet {
namespace {

Item make_item(std::uint64_t key, std::uint64_t size = 10) {
  Item item;
  item.key = key;
  item.value.size = size;
  return item;
}

TEST(Assoc, InsertFindErase) {
  AssocTable table;
  std::uint32_t probes = 0;
  table.insert(make_item(7, 42), &probes);
  EXPECT_GE(probes, 1u);
  EXPECT_EQ(table.size(), 1u);

  auto found = table.find(7);
  ASSERT_NE(found.item, nullptr);
  EXPECT_EQ(found.item->value.size, 42u);

  auto erased = table.erase(7);
  EXPECT_TRUE(erased.erased);
  EXPECT_EQ(erased.item.key, 7u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.erase(7).erased);
}

TEST(Assoc, MissReportsAtLeastOneProbe) {
  AssocTable table;
  const auto miss = table.find(99);
  EXPECT_EQ(miss.item, nullptr);
  EXPECT_GE(miss.probes, 1u);
}

TEST(Assoc, ExpandsPastLoadFactorWithoutLosingItems) {
  AssocTable table;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    table.insert(make_item(k, k), nullptr);
  }
  EXPECT_EQ(table.size(), kN);
  EXPECT_GT(table.bucket_count(), AssocTable::kInitialBuckets);
  EXPECT_LT(static_cast<double>(kN),
            AssocTable::kMaxLoad * static_cast<double>(table.bucket_count()) *
                2.0);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto f = table.find(k);
    ASSERT_NE(f.item, nullptr) << "lost key " << k;
    ASSERT_EQ(f.item->value.size, k);
  }
}

TEST(Assoc, ForEachVisitsAll) {
  AssocTable table;
  for (std::uint64_t k = 0; k < 100; ++k) {
    table.insert(make_item(k), nullptr);
  }
  std::set<std::uint64_t> seen;
  table.for_each([&](const Item& item) { seen.insert(item.key); });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Assoc, OverheadTracksBucketArray) {
  AssocTable table;
  const auto before = table.overhead_bytes();
  for (std::uint64_t k = 0; k < 1000; ++k) {
    table.insert(make_item(k), nullptr);
  }
  EXPECT_GT(table.overhead_bytes(), before);
}

TEST(Assoc, RandomizedChurnAgainstReferenceModel) {
  AssocTable table;
  std::set<std::uint64_t> model;
  util::Rng rng(13);
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t key = rng.uniform(0, 499);
    switch (rng.uniform(0, 2)) {
      case 0:
        if (!model.contains(key)) {
          table.insert(make_item(key), nullptr);
          model.insert(key);
        }
        break;
      case 1:
        ASSERT_EQ(table.erase(key).erased, model.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(table.find(key).item != nullptr, model.contains(key));
    }
    ASSERT_EQ(table.size(), model.size());
  }
}

}  // namespace
}  // namespace mnemo::kvstore::cachet
