#include "kvstore/vermilion/dict.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace mnemo::kvstore::vermilion {
namespace {

Record rec(std::uint64_t size) {
  Record r;
  r.size = size;
  return r;
}

TEST(Dict, InsertFindEraseBasics) {
  Dict dict;
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_EQ(dict.find(1).entry, nullptr);

  auto up = dict.upsert(1, rec(100));
  EXPECT_FALSE(up.existed);
  EXPECT_EQ(dict.size(), 1u);

  auto found = dict.find(1);
  ASSERT_NE(found.entry, nullptr);
  EXPECT_EQ(found.entry->value.size, 100u);
  EXPECT_GE(found.probes, 1u);

  auto erased = dict.erase(1);
  EXPECT_TRUE(erased.erased);
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_FALSE(dict.erase(1).erased);
}

TEST(Dict, UpsertOverwritesExisting) {
  Dict dict;
  dict.upsert(5, rec(10));
  auto up = dict.upsert(5, rec(20));
  EXPECT_TRUE(up.existed);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.find(5).entry->value.size, 20u);
}

TEST(Dict, GrowsPastInitialBucketsWithoutLosingKeys) {
  Dict dict;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) dict.upsert(k, rec(k));
  EXPECT_EQ(dict.size(), kN);
  EXPECT_GT(dict.bucket_count(), Dict::kInitialBuckets);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto f = dict.find(k);
    ASSERT_NE(f.entry, nullptr) << "lost key " << k;
    ASSERT_EQ(f.entry->value.size, k);
  }
}

TEST(Dict, IncrementalRehashEventuallyCompletes) {
  Dict dict;
  for (std::uint64_t k = 0; k < 100; ++k) dict.upsert(k, rec(k));
  // Rehash migrates a few buckets per op: keep poking until done.
  int steps = 0;
  while (dict.rehashing() && steps < 100'000) {
    dict.find(steps % 100);
    ++steps;
  }
  EXPECT_FALSE(dict.rehashing());
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_NE(dict.find(k).entry, nullptr);
  }
}

TEST(Dict, FindDuringRehashSeesBothTables) {
  Dict dict;
  // Fill exactly to the rehash trigger then insert one more.
  for (std::uint64_t k = 0; k <= Dict::kInitialBuckets; ++k) {
    dict.upsert(k, rec(k));
  }
  for (std::uint64_t k = 0; k <= Dict::kInitialBuckets; ++k) {
    ASSERT_NE(dict.find(k).entry, nullptr);
  }
}

TEST(Dict, ForEachVisitsEveryEntryOnce) {
  Dict dict;
  constexpr std::uint64_t kN = 500;
  for (std::uint64_t k = 0; k < kN; ++k) dict.upsert(k, rec(1));
  std::set<std::uint64_t> seen;
  dict.for_each([&](const Dict::Entry& e) { seen.insert(e.key); });
  EXPECT_EQ(seen.size(), kN);
}

TEST(Dict, OverheadGrowsWithSize) {
  Dict dict;
  const auto empty_overhead = dict.overhead_bytes();
  for (std::uint64_t k = 0; k < 1000; ++k) dict.upsert(k, rec(1));
  EXPECT_GT(dict.overhead_bytes(), empty_overhead);
}

TEST(Dict, RandomizedChurnAgainstReferenceModel) {
  Dict dict;
  std::set<std::uint64_t> model;
  util::Rng rng(77);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t key = rng.uniform(0, 999);
    switch (rng.uniform(0, 2)) {
      case 0:
        dict.upsert(key, rec(key));
        model.insert(key);
        break;
      case 1: {
        const bool erased = dict.erase(key).erased;
        ASSERT_EQ(erased, model.erase(key) > 0);
        break;
      }
      default: {
        const bool found = dict.find(key).entry != nullptr;
        ASSERT_EQ(found, model.contains(key));
      }
    }
    ASSERT_EQ(dict.size(), model.size());
  }
}

}  // namespace
}  // namespace mnemo::kvstore::vermilion
