// Cancellation contract of the campaign runner: the token is observed
// *between* cells (a started cell always finishes), a canceled run throws
// util::CanceledError instead of returning a partial grid, and the cells
// that did complete are bit-identical to an uncanceled campaign — chaos
// stalls (faultinject::chaos_cell_delay) delay the tool, never the
// simulated clock.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "faultinject/io_fault.hpp"
#include "util/cancel.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

workload::Trace small_trace() {
  workload::WorkloadSpec spec;
  spec.name = "cancel_zipf";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 120;
  spec.request_count = 1'200;
  spec.seed = 0xcafe;
  return workload::Trace::generate(spec);
}

std::vector<CampaignCell> grid_cells(const workload::Trace& trace,
                                     int repeats) {
  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);
  std::vector<CampaignCell> cells;
  for (int r = 0; r < repeats; ++r) cells.push_back({all_fast, r});
  return cells;
}

TEST(CampaignCancel, ExpiredDeadlineThrowsAndRunsNoCell) {
  const workload::Trace trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  const util::CancelToken token{util::Deadline::after_ms(0)};
  CampaignRunner runner(2, &token);

  const std::size_t before = campaign_totals().cells;
  try {
    (void)runner.run(engine, trace, grid_cells(trace, 4));
    FAIL() << "a canceled campaign must throw, never return a partial grid";
  } catch (const util::CanceledError& e) {
    EXPECT_EQ(e.error().code, util::ErrorCode::kDeadlineExceeded);
  }
  // Every cell observed the expired token and was skipped; nothing was
  // recorded in the process-wide totals (record happens after the throw).
  EXPECT_EQ(campaign_totals().cells, before);
}

TEST(CampaignCancel, RunCheckedAlsoThrowsOnExpiredDeadline) {
  const workload::Trace trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  const util::CancelToken token{util::Deadline::after_ms(0)};
  CampaignRunner runner(2, &token);
  EXPECT_THROW((void)runner.run_checked(engine, trace, grid_cells(trace, 4)),
               util::CanceledError);
}

TEST(CampaignCancel, MidCampaignCancelThrowsTheExplicitReason) {
  // Chaos stalls make every cell take >= 25ms, guaranteeing the campaign
  // is still in flight when the out-of-band cancel lands. The runner must
  // finish the started cells, skip the rest, and throw the caller's
  // reason — never hang, never crash.
  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 25.0;
  faultinject::ScopedIoFaults chaos(plan);

  const workload::Trace trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  util::CancelToken token;
  CampaignRunner runner(2, &token);

  std::thread canceler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.cancel({util::ErrorCode::kCanceled, "client hung up"});
  });
  try {
    (void)runner.run(engine, trace, grid_cells(trace, 16));
    FAIL() << "campaign outlived an explicit cancel without throwing";
  } catch (const util::CanceledError& e) {
    EXPECT_EQ(e.error().code, util::ErrorCode::kCanceled);
    EXPECT_EQ(e.error().message, "client hung up");
  }
  canceler.join();
  EXPECT_GT(chaos.injector().stats().delayed_cells, 0u);
}

TEST(CampaignCancel, UncanceledTokenPerturbsNothing) {
  // A live-but-never-canceled token (the common serve case) must leave
  // the campaign bit-identical to a token-free run.
  const workload::Trace trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);
  const std::vector<CampaignCell> cells = grid_cells(trace, cfg.repeats);

  CampaignRunner plain(2);
  const std::vector<RunMeasurement> base = plain.run(engine, trace, cells);

  const util::CancelToken token{util::Deadline::after_ms(600'000)};
  CampaignRunner guarded(2, &token);
  const std::vector<RunMeasurement> got = guarded.run(engine, trace, cells);

  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].runtime_ns, got[i].runtime_ns);
    EXPECT_EQ(base[i].throughput_ops, got[i].throughput_ops);
    EXPECT_EQ(base[i].p99_ns, got[i].p99_ns);
  }
}

TEST(CampaignCancel, ChaosStallsDelayTheToolNotTheMeasurement) {
  const workload::Trace trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);
  const std::vector<CampaignCell> cells = grid_cells(trace, cfg.repeats);

  CampaignRunner clean_runner(2);
  const std::vector<RunMeasurement> clean =
      clean_runner.run(engine, trace, cells);

  faultinject::IoFaultPlan plan;
  plan.slow_cell_rate = 1.0;
  plan.slow_cell_ms = 5.0;
  faultinject::ScopedIoFaults chaos(plan);
  CampaignRunner stalled_runner(2);
  const std::vector<RunMeasurement> stalled =
      stalled_runner.run(engine, trace, cells);

  EXPECT_EQ(chaos.injector().stats().delayed_cells, cells.size());
  ASSERT_EQ(clean.size(), stalled.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].runtime_ns, stalled[i].runtime_ns);
    EXPECT_EQ(clean[i].throughput_ops, stalled[i].throughput_ops);
  }
}

}  // namespace
}  // namespace mnemo::core
