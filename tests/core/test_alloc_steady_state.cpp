// Steady-state allocation audit for the replay hot path (DESIGN.md §8).
//
// The flat-table refactor promises that once a deployment is warmed up —
// every key loaded, every dense table grown, every LRU slot pool at
// working-set size — replaying requests allocates nothing. This binary
// overrides global operator new/delete with a counter and asserts exactly
// that: a full second pass over the trace performs zero heap allocations.
//
// DynaStore is deliberately out of scope: its write path appends to a
// journal (an append-only log grows by design), so it is not part of the
// zero-allocation contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "hybridmem/placement.hpp"
#include "kvstore/dual_server.hpp"
#include "workload/trace.hpp"
#include "workload/workload_spec.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mnemo {
namespace {

workload::Trace replay_trace() {
  workload::WorkloadSpec spec;
  spec.name = "alloc_audit";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 500;
  spec.request_count = 20'000;
  spec.seed = 0xa110c;
  return workload::Trace::generate(spec);
}

void expect_steady_state_allocation_free(kvstore::StoreKind kind) {
  const workload::Trace trace = replay_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  const hybridmem::Placement placement = hybridmem::Placement::from_order(
      order, static_cast<std::size_t>(trace.key_count()) / 2);
  const std::uint64_t need = std::max<std::uint64_t>(
      trace.dataset_bytes() * 2, 64ULL * 1024 * 1024);

  hybridmem::HybridMemory memory(hybridmem::paper_testbed_with_capacity(need));
  kvstore::StoreConfig cfg;
  cfg.seed = 0xbe7c;
  kvstore::DualServer servers(memory, kind, cfg);
  ASSERT_TRUE(servers.populate(trace, placement).ok());

  // Warm-up pass: any remaining growth (LRU slot pools, dense stamp
  // tables, incremental rehash) happens here.
  memory.drop_caches();
  for (const workload::Request& req : trace.requests()) {
    const util::Result<kvstore::OpResult> r = servers.execute(req);
    ASSERT_TRUE(r.ok() && r.value().ok);
  }

  // Audited pass: replays the identical request stream, so every table is
  // already at working-set size. Zero allocations allowed.
  memory.drop_caches();
  const std::uint64_t before = g_allocations.load();
  for (const workload::Request& req : trace.requests()) {
    const util::Result<kvstore::OpResult> r = servers.execute(req);
    if (!r.ok() || !r.value().ok) {
      ASSERT_TRUE(false) << "execute failed during audited pass";
    }
  }
  const std::uint64_t during = g_allocations.load() - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations during the steady-state replay pass";
}

TEST(AllocSteadyState, VermilionReplayPassAllocatesNothing) {
  expect_steady_state_allocation_free(kvstore::StoreKind::kVermilion);
}

TEST(AllocSteadyState, CachetReplayPassAllocatesNothing) {
  expect_steady_state_allocation_free(kvstore::StoreKind::kCachet);
}

TEST(AllocSteadyState, CounterHookSeesAllocations) {
  // Sanity-check the hook itself: a vector growth must be visible,
  // otherwise the zero-allocation assertions above prove nothing.
  const std::uint64_t before = g_allocations.load();
  std::vector<int>* v = new std::vector<int>(1024);
  const std::uint64_t during = g_allocations.load() - before;
  delete v;
  EXPECT_GE(during, 2u) << "operator new override not in effect";
}

}  // namespace
}  // namespace mnemo
