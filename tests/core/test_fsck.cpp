// Crash-recovery contract of ArtifactStore::fsck (ISSUE acceptance:
// "fsck quarantines exactly the damage that was injected, survivors
// decode bit-identical"): randomized damage — truncation, bit flips,
// foreign files, orphaned temps — must be quarantined precisely, while
// untouched artifacts keep loading byte-for-byte and a repaired
// directory scans clean afterwards.

#include "core/artifact_store.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/artifacts.hpp"

namespace mnemo::core {
namespace {

namespace fs = std::filesystem;

/// A pid guaranteed to belong to no process: far above any default
/// pid_max, probed at runtime so the test never depends on the host's
/// process table.
long find_dead_pid() {
  for (long pid = (1L << 30); pid > 400; pid /= 3) {
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      return pid;
    }
  }
  return 0;
}

struct FsckFixture : ::testing::Test {
  fs::path dir;
  void SetUp() override {
    dir = fs::path(testing::TempDir()) /
          (std::string("mnemo_fsck_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  static std::string key_for(std::size_t i) {
    std::string key = "00000000000000000000000000000000";
    const char hex[] = "0123456789abcdef";
    key[0] = hex[i % 16];
    key[1] = hex[(i / 16) % 16];
    return key;
  }

  static ReportArtifact sample(std::size_t i) {
    ReportArtifact a;
    a.text = "workload: trending #" + std::to_string(i) + "\n";
    a.csv = "key_id,est_throughput_ops\n" + std::to_string(i) + ",1\n";
    return a;
  }
};

TEST_F(FsckFixture, CleanDirectoryScansClean) {
  ArtifactStore store(dir.string());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.save(key_for(i), sample(i)).ok());
  }
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.scanned, 4u);
  EXPECT_EQ(report.healthy, 4u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST_F(FsckFixture, DisabledStoreFsckIsANoOp) {
  ArtifactStore store;
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.scanned, 0u);
}

TEST_F(FsckFixture, RandomDamageIsQuarantinedExactlyAndSurvivorsAreIntact) {
  // Property sweep: several seeds, each damaging a random subset of an
  // 8-artifact cache in a random way. The invariant is exact: the set of
  // quarantined files equals the set of damaged files, every survivor
  // still decodes to its original bytes, and a second scan is clean.
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    const fs::path round_dir = dir / ("round_" + std::to_string(seed));
    ArtifactStore store((round_dir).string());
    constexpr std::size_t kFiles = 8;
    for (std::size_t i = 0; i < kFiles; ++i) {
      ASSERT_TRUE(store.save(key_for(i), sample(i)).ok());
    }

    std::mt19937_64 rng(seed);
    std::set<std::string> damaged;
    for (std::size_t i = 0; i < kFiles; ++i) {
      const fs::path path =
          store.path_for(ReportArtifact::kStage, key_for(i));
      switch (rng() % 4) {
        case 0:  // untouched survivor
          break;
        case 1: {  // truncation (torn write / torn crash)
          const auto size = fs::file_size(path);
          fs::resize_file(path, 4 + rng() % (size - 4));
          damaged.insert(path.filename().string());
          break;
        }
        case 2: {  // single bit flip in the payload/checksum region
          // (a flip in the schema/version header is invisible to the
          // schema-agnostic generic frame check — that damage class is
          // caught by the *typed* load as a schema/version miss instead)
          std::fstream f(path, std::ios::in | std::ios::out |
                                   std::ios::binary);
          const auto size = fs::file_size(path);
          const auto pos =
              static_cast<std::streamoff>(size / 2 + rng() % (size / 2));
          f.seekg(pos);
          char c = 0;
          f.get(c);
          f.seekp(pos);
          f.put(static_cast<char>(c ^ (1 << (rng() % 8))));
          damaged.insert(path.filename().string());
          break;
        }
        default: {  // foreign bytes under the artifact extension
          std::ofstream(path, std::ios::binary)
              << "not an artifact " << rng();
          damaged.insert(path.filename().string());
          break;
        }
      }
    }

    const FsckReport report = store.fsck();
    std::set<std::string> quarantined;
    for (const FsckFinding& f : report.findings) {
      EXPECT_TRUE(f.repaired) << f.file << " seed " << seed;
      quarantined.insert(f.file);
    }
    EXPECT_EQ(quarantined, damaged) << "seed " << seed;
    EXPECT_EQ(report.quarantined, damaged.size()) << "seed " << seed;
    EXPECT_EQ(report.scanned, kFiles) << "seed " << seed;
    EXPECT_EQ(report.healthy, kFiles - damaged.size()) << "seed " << seed;

    for (std::size_t i = 0; i < kFiles; ++i) {
      const fs::path path =
          store.path_for(ReportArtifact::kStage, key_for(i));
      const auto got = store.load<ReportArtifact>(key_for(i));
      if (damaged.contains(path.filename().string())) {
        // Quarantined: degrades to a cold cell (kAbsent), never an error
        // — this is the "warm run replays only the quarantined keys"
        // half of the acceptance criterion at the store level.
        EXPECT_FALSE(got.has_value()) << "seed " << seed;
        EXPECT_EQ(store.events().back().miss, CacheMiss::kAbsent);
        EXPECT_TRUE(fs::exists(round_dir / "quarantine" /
                               path.filename().string()));
      } else {
        ASSERT_TRUE(got.has_value()) << "seed " << seed;
        EXPECT_TRUE(*got == sample(i)) << "seed " << seed;
      }
    }

    // The damage was moved, not copied: a second pass has nothing to do.
    const FsckReport second = store.fsck();
    EXPECT_TRUE(second.clean()) << "seed " << seed << "\n"
                                << second.render();
  }
}

TEST_F(FsckFixture, DryRunReportsWithoutTouchingDisk) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(key_for(0), sample(0)).ok());
  const fs::path path = store.path_for(ReportArtifact::kStage, key_for(0));
  fs::resize_file(path, fs::file_size(path) / 2);

  const FsckReport report = store.fsck(/*repair=*/false);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings[0].repaired);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(fs::exists(path));  // still in place
  EXPECT_FALSE(fs::exists(dir / "quarantine"));
}

TEST_F(FsckFixture, OrphanedTempOfADeadWriterIsReaped) {
  const long dead = find_dead_pid();
  ASSERT_GT(dead, 0);
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(key_for(0), sample(0)).ok());

  const fs::path orphan =
      dir / ("report-" + key_for(1) + ".mna.tmp." + std::to_string(dead) +
             ".0");
  const fs::path live =
      dir / ("report-" + key_for(2) + ".mna.tmp." +
             std::to_string(::getpid()) + ".0");
  const fs::path foreign = dir / "stray.tmp.notapid";
  std::ofstream(orphan, std::ios::binary) << "half a frame";
  std::ofstream(live, std::ios::binary) << "in-flight write";
  std::ofstream(foreign, std::ios::binary) << "who knows";

  const FsckReport report = store.fsck();
  EXPECT_EQ(report.reaped_temps, 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, orphan.filename().string());
  EXPECT_EQ(report.findings[0].problem, FsckProblem::kOrphanTemp);
  EXPECT_TRUE(report.findings[0].repaired);
  EXPECT_FALSE(fs::exists(orphan));
  // A live writer's temp and an unparseable name are strictly off-limits.
  EXPECT_TRUE(fs::exists(live));
  EXPECT_TRUE(fs::exists(foreign));
}

TEST_F(FsckFixture, JournaledButMissingFileIsReportedNotRepaired) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(key_for(0), sample(0)).ok());
  ASSERT_TRUE(store.save(key_for(1), sample(1)).ok());
  const fs::path gone = store.path_for(ReportArtifact::kStage, key_for(1));
  fs::remove(gone);

  const FsckReport report = store.fsck();
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, gone.filename().string());
  EXPECT_EQ(report.findings[0].problem, FsckProblem::kJournalMissing);
  EXPECT_FALSE(report.findings[0].repaired);  // advisory: nothing to move
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.healthy, 1u);
}

TEST_F(FsckFixture, TornJournalTailIsTolerated) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(key_for(0), sample(0)).ok());
  // Simulate a crash mid-append: the final record has no newline and
  // names a file that does not exist. fsck must not report it.
  std::ofstream(dir / "journal.mnj", std::ios::binary | std::ios::app)
      << "commit report-feedfeedfeedfeedfeedfeedfeedfeed.mna 12";
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST_F(FsckFixture, UnjournaledValidArtifactIsNeverCondemned) {
  // A cache written before the journal existed (or by a foreign tool
  // speaking the same format) must fsck clean: the journal is advisory.
  ArtifactStore writer(dir.string());
  ASSERT_TRUE(writer.save(key_for(0), sample(0)).ok());
  fs::remove(dir / "journal.mnj");

  ArtifactStore store(dir.string());
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.healthy, 1u);
  EXPECT_TRUE(store.load<ReportArtifact>(key_for(0)).has_value());
}

TEST_F(FsckFixture, RenderSummarizesFindings) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(key_for(0), sample(0)).ok());
  const fs::path path = store.path_for(ReportArtifact::kStage, key_for(0));
  std::ofstream(path, std::ios::binary) << "junk";
  const FsckReport report = store.fsck();
  const std::string text = report.render();
  EXPECT_NE(text.find("1 quarantined"), std::string::npos);
  EXPECT_NE(text.find("bad magic"), std::string::npos);
  EXPECT_NE(text.find(path.filename().string()), std::string::npos);
}

}  // namespace
}  // namespace mnemo::core
