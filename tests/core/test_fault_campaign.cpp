// Degraded-mode campaign contract (labelled `faults` + `concurrency`):
// under a nonempty fault plan the checked runner must (a) quarantine
// exactly the cells that could not produce a fault-free measurement,
// (b) keep every accepted measurement bit-identical to the fault-free
// campaign's, and (c) produce the same measurements AND the same failure
// ledger at any thread count. These are the properties that make partial
// results from a faulty platform trustworthy at all.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/mnemo.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

workload::Trace zipfian_trace() {
  workload::WorkloadSpec spec;
  spec.name = "fault_zipf";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 250;
  spec.request_count = 2'500;
  spec.seed = 0xc0ffee;
  return workload::Trace::generate(spec);
}

/// A plan that deterministically splits the extreme placements: with 20 %
/// of SlowMem lines poisoned, an all-SlowMem deployment cannot avoid
/// poison hits on either attempt (the trace touches ~all 250 keys), while
/// an all-FastMem deployment never consults the injector and stays clean.
faultinject::FaultPlan poison_plan() {
  faultinject::FaultPlan plan;
  plan.poison_rate = 0.2;
  return plan;
}

SensitivityConfig faulty_config(const faultinject::FaultPlan& plan) {
  SensitivityConfig cfg;
  cfg.repeats = 2;
  cfg.faults = plan;
  return cfg;
}

std::vector<CampaignCell> mixed_cells(const workload::Trace& trace) {
  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);
  const hybridmem::Placement all_slow(trace.key_count(),
                                      hybridmem::NodeId::kSlow);
  return {{all_fast, 0}, {all_slow, 0}, {all_fast, 1}, {all_slow, 1}};
}

void expect_bit_identical(const RunMeasurement& a, const RunMeasurement& b) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.avg_read_ns, b.avg_read_ns);
  EXPECT_EQ(a.avg_write_ns, b.avg_write_ns);
  EXPECT_EQ(a.p95_ns, b.p95_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.llc_hit_rate, b.llc_hit_rate);
  ASSERT_EQ(a.latency_hist.count(), b.latency_hist.count());
  for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i) {
    ASSERT_EQ(a.latency_hist.bucket(i), b.latency_hist.bucket(i));
  }
}

TEST(FaultCampaign, EmptyPlanDegeneratesToRun) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);
  const std::vector<CampaignCell> cells = mixed_cells(trace);

  CampaignRunner runner(2);
  const std::vector<RunMeasurement> plain = runner.run(engine, trace, cells);
  CampaignResult checked = runner.run_checked(engine, trace, cells);

  EXPECT_FALSE(checked.partial());
  EXPECT_TRUE(checked.failures.empty());
  ASSERT_EQ(checked.measurements.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(checked.measurements[i].has_value());
    expect_bit_identical(*checked.measurements[i], plain[i]);
  }
}

TEST(FaultCampaign, MixedPlanQuarantinesSomeCellsAndKeepsOthers) {
  const workload::Trace trace = zipfian_trace();
  const SensitivityEngine engine(faulty_config(poison_plan()));
  const std::vector<CampaignCell> cells = mixed_cells(trace);

  CampaignRunner runner(2);
  const CampaignResult result = runner.run_checked(engine, trace, cells);

  // All-FastMem cells (0, 2) never touch SlowMem: accepted. All-SlowMem
  // cells (1, 3) cannot dodge a 20 % poison set: quarantined.
  ASSERT_EQ(result.measurements.size(), 4u);
  EXPECT_TRUE(result.measurements[0].has_value());
  EXPECT_TRUE(result.measurements[2].has_value());
  EXPECT_FALSE(result.measurements[1].has_value());
  EXPECT_FALSE(result.measurements[3].has_value());

  ASSERT_TRUE(result.partial());
  ASSERT_EQ(result.failures.size(), 2u);
  for (const CellFailure& f : result.failures) {
    EXPECT_EQ(f.attempts, 2);  // first try + exactly one retry
    EXPECT_EQ(f.fast_keys, 0u);
    EXPECT_EQ(f.error.code, util::ErrorCode::kFaultInjected);
    EXPECT_GT(f.faults.events(), 0u);
    EXPECT_GT(f.faults.poison_hits, 0u);
  }
  // Ledger is in cell order at any schedule.
  EXPECT_EQ(result.failures[0].cell, 1u);
  EXPECT_EQ(result.failures[1].cell, 3u);
}

TEST(FaultCampaign, AcceptedCellsAreBitIdenticalToFaultFree) {
  const workload::Trace trace = zipfian_trace();
  const std::vector<CampaignCell> cells = mixed_cells(trace);

  SensitivityConfig healthy_cfg;
  healthy_cfg.repeats = 2;
  const SensitivityEngine healthy(healthy_cfg);
  const SensitivityEngine faulty(faulty_config(poison_plan()));

  CampaignRunner runner(2);
  const std::vector<RunMeasurement> reference =
      runner.run(healthy, trace, cells);
  const CampaignResult checked = runner.run_checked(faulty, trace, cells);

  ASSERT_EQ(checked.measurements.size(), reference.size());
  int accepted = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (!checked.measurements[i].has_value()) continue;
    ++accepted;
    expect_bit_identical(*checked.measurements[i], reference[i]);
    EXPECT_EQ(checked.measurements[i]->faults, faultinject::FaultStats{});
  }
  EXPECT_GT(accepted, 0);
}

/// Param = worker threads. The acceptance criterion: same seed, threads
/// in {1, 2, 8} — bit-identical campaign results AND identical ledgers.
class FaultCampaignThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultCampaignThreads, ResultsAndLedgerAgreeWithSerialBitForBit) {
  const workload::Trace trace = zipfian_trace();
  const SensitivityEngine engine(faulty_config(poison_plan()));
  const std::vector<CampaignCell> cells = mixed_cells(trace);

  CampaignRunner serial(1);
  CampaignRunner parallel(GetParam());
  const CampaignResult ref = serial.run_checked(engine, trace, cells);
  const CampaignResult out = parallel.run_checked(engine, trace, cells);

  ASSERT_EQ(out.measurements.size(), ref.measurements.size());
  for (std::size_t i = 0; i < ref.measurements.size(); ++i) {
    ASSERT_EQ(out.measurements[i].has_value(),
              ref.measurements[i].has_value())
        << "cell " << i;
    if (ref.measurements[i].has_value()) {
      expect_bit_identical(*out.measurements[i], *ref.measurements[i]);
    }
  }
  // CellFailure has full value equality: same cells, same attempt counts,
  // same typed errors, same absorbed-event counters.
  EXPECT_EQ(out.failures, ref.failures);
}

TEST_P(FaultCampaignThreads, GridMergeAgreesWithSerialBitForBit) {
  const workload::Trace trace = zipfian_trace();
  const SensitivityEngine engine(faulty_config(poison_plan()));
  const std::vector<hybridmem::Placement> placements = {
      hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kFast),
      hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kSlow)};

  CampaignRunner serial(1);
  CampaignRunner parallel(GetParam());
  const CampaignResult ref =
      serial.measure_grid_checked(engine, trace, placements);
  const CampaignResult out =
      parallel.measure_grid_checked(engine, trace, placements);

  ASSERT_EQ(out.measurements.size(), ref.measurements.size());
  for (std::size_t i = 0; i < ref.measurements.size(); ++i) {
    ASSERT_EQ(out.measurements[i].has_value(),
              ref.measurements[i].has_value());
    if (ref.measurements[i].has_value()) {
      expect_bit_identical(*out.measurements[i], *ref.measurements[i]);
    }
  }
  EXPECT_EQ(out.failures, ref.failures);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, FaultCampaignThreads,
                         ::testing::Values<std::size_t>(1, 2, 8),
                         [](const auto& info) {
                           return std::to_string(info.param);
                         });

TEST(FaultCampaign, GridMergeIsAllOrNothingPerPlacement) {
  const workload::Trace trace = zipfian_trace();
  const SensitivityEngine faulty(faulty_config(poison_plan()));
  SensitivityConfig healthy_cfg;
  healthy_cfg.repeats = 2;
  const SensitivityEngine healthy(healthy_cfg);

  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);
  const hybridmem::Placement all_slow(trace.key_count(),
                                      hybridmem::NodeId::kSlow);

  CampaignRunner runner(2);
  const CampaignResult grid =
      runner.measure_grid_checked(faulty, trace, {all_fast, all_slow});
  const std::vector<RunMeasurement> reference =
      runner.measure_grid(healthy, trace, {all_fast, all_slow});

  ASSERT_EQ(grid.measurements.size(), 2u);
  // The clean placement's merged repeats equal the fault-free average
  // bit for bit; the poisoned placement is quarantined wholesale, never
  // averaged from a subset of surviving repeats.
  ASSERT_TRUE(grid.measurements[0].has_value());
  expect_bit_identical(*grid.measurements[0], reference[0]);
  EXPECT_FALSE(grid.measurements[1].has_value());
  EXPECT_TRUE(grid.partial());
}

TEST(FaultCampaign, LedgerRendersOneRowPerQuarantinedCell) {
  const workload::Trace trace = zipfian_trace();
  const SensitivityEngine engine(faulty_config(poison_plan()));
  CampaignRunner runner(2);
  const CampaignResult result =
      runner.run_checked(engine, trace, mixed_cells(trace));
  ASSERT_FALSE(result.failures.empty());

  const std::string ledger = render_failure_ledger(result.failures);
  EXPECT_NE(ledger.find("cell"), std::string::npos);
  EXPECT_NE(ledger.find("fast keys"), std::string::npos);
  EXPECT_NE(ledger.find("fault_injected"), std::string::npos);
  EXPECT_NE(ledger.find("events t/p/bw"), std::string::npos);
}

TEST(FaultCampaign, MnemoProfileDegradesInsteadOfLying) {
  const workload::Trace trace = zipfian_trace();
  MnemoConfig cfg;
  cfg.repeats = 2;
  cfg.threads = 2;
  cfg.faults = poison_plan();
  const Mnemo mnemo(cfg);
  const MnemoReport report = mnemo.profile(trace);

  // The all-SlowMem baseline is unmeasurable under 20 % poison, so the
  // session must flag itself degraded and withhold the curve/SLO numbers
  // rather than derive them from a perturbed baseline.
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(report.partial());
  EXPECT_FALSE(report.cell_failures.empty());
  EXPECT_TRUE(report.curve.points.empty());
  EXPECT_FALSE(report.slo_choice.has_value());
}

TEST(FaultCampaign, MnemoProfileSurvivesAHarmlessPlan) {
  const workload::Trace trace = zipfian_trace();
  MnemoConfig cfg;
  cfg.repeats = 2;
  cfg.threads = 2;
  // A rate this small draws no fault in ~2k SlowMem reads per cell: the
  // armed platform stays event-free, so the full profile (curve + SLO)
  // must come out, not degraded, with an empty ledger.
  cfg.faults.transient_read_rate = 1e-9;
  const Mnemo mnemo(cfg);
  const MnemoReport report = mnemo.profile(trace);

  EXPECT_FALSE(report.degraded);
  EXPECT_FALSE(report.partial());
  EXPECT_FALSE(report.curve.points.empty());
}

TEST(FaultCampaign, MnemoHealthyProfileMatchesFaultFreeBitForBit) {
  const workload::Trace trace = zipfian_trace();
  MnemoConfig healthy_cfg;
  healthy_cfg.repeats = 2;
  healthy_cfg.threads = 2;
  MnemoConfig armed_cfg = healthy_cfg;
  armed_cfg.faults.transient_read_rate = 1e-9;

  const MnemoReport healthy = Mnemo(healthy_cfg).profile(trace);
  const MnemoReport armed = Mnemo(armed_cfg).profile(trace);

  // Zero absorbed events means the armed platform's numbers are the
  // fault-free platform's numbers — not approximately, bitwise.
  expect_bit_identical(armed.baselines.fast, healthy.baselines.fast);
  expect_bit_identical(armed.baselines.slow, healthy.baselines.slow);
  ASSERT_EQ(armed.curve.points.size(), healthy.curve.points.size());
  for (std::size_t i = 0; i < healthy.curve.points.size(); ++i) {
    ASSERT_EQ(armed.curve.points[i].est_throughput_ops,
              healthy.curve.points[i].est_throughput_ops);
    ASSERT_EQ(armed.curve.points[i].cost_factor,
              healthy.curve.points[i].cost_factor);
  }
}

}  // namespace
}  // namespace mnemo::core
