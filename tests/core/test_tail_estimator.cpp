#include "core/tail_estimator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/mnemo.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace small_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 500;
  spec.request_count = 10'000;
  return workload::Trace::generate(spec);
}

TEST(TailEstimator, FastShareFollowsAccessMass) {
  const auto trace = small_trace();
  const AccessPattern pattern = PatternEngine::analyze(trace);
  const auto order = pattern.touch_order;
  EXPECT_DOUBLE_EQ(TailEstimator::fast_share(pattern, order, 0), 0.0);
  EXPECT_DOUBLE_EQ(
      TailEstimator::fast_share(pattern, order, order.size()), 1.0);
  // Hotspot: the first-touched ~20% of keys carry ~80% of requests.
  const double share =
      TailEstimator::fast_share(pattern, order, order.size() / 4);
  EXPECT_GT(share, 0.5);
}

TEST(TailEstimator, EndpointsMatchBaselineTails) {
  const auto trace = small_trace();
  MnemoConfig cfg;
  cfg.repeats = 1;
  const Mnemo mnemo(cfg);
  const MnemoReport rep = mnemo.profile(trace);
  const AccessPattern& pattern = rep.pattern;

  const TailEstimate all_slow =
      TailEstimator::estimate(pattern, rep.order, 0, rep.baselines);
  const TailEstimate all_fast = TailEstimator::estimate(
      pattern, rep.order, rep.order.size(), rep.baselines);
  EXPECT_NEAR(all_slow.p99_ns / rep.baselines.slow.p99_ns, 1.0, 0.15);
  EXPECT_NEAR(all_fast.p99_ns / rep.baselines.fast.p99_ns, 1.0, 0.15);
  EXPECT_DOUBLE_EQ(all_slow.fast_request_share, 0.0);
  EXPECT_DOUBLE_EQ(all_fast.fast_request_share, 1.0);
}

TEST(TailEstimator, MidCurveEstimateApproximatesMeasurement) {
  const auto trace = small_trace();
  MnemoConfig cfg;
  cfg.repeats = 1;
  const Mnemo mnemo(cfg);
  const MnemoReport rep = mnemo.profile(trace);

  const std::size_t half = rep.order.size() / 2;
  const TailEstimate est =
      TailEstimator::estimate(rep.pattern, rep.order, half, rep.baselines);
  const RunMeasurement meas =
      mnemo.validate(trace, rep.order, rep.curve.points[half]);
  // Tails are the hard part — the extension aims at the right decade and
  // ballpark, not the sub-percent accuracy of the throughput model.
  EXPECT_NEAR(est.p95_ns / meas.p95_ns, 1.0, 0.35);
  EXPECT_NEAR(est.p99_ns / meas.p99_ns, 1.0, 0.35);
}

TEST(TailEstimator, TailsImproveMonotonicallyWithFastShare) {
  const auto trace = small_trace();
  MnemoConfig cfg;
  cfg.repeats = 1;
  const Mnemo mnemo(cfg);
  const MnemoReport rep = mnemo.profile(trace);
  double prev = 1e18;
  for (const std::size_t keys :
       {std::size_t{0}, rep.order.size() / 4, rep.order.size() / 2,
        rep.order.size()}) {
    const TailEstimate est =
        TailEstimator::estimate(rep.pattern, rep.order, keys, rep.baselines);
    EXPECT_LE(est.p95_ns, prev * 1.001);
    prev = est.p95_ns;
  }
}

}  // namespace
}  // namespace mnemo::core
