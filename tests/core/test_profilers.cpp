#include "core/profilers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace small_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 300;
  spec.request_count = 3'000;
  return workload::Trace::generate(spec);
}

SensitivityEngine quick_engine() {
  SensitivityConfig cfg;
  cfg.repeats = 1;
  return SensitivityEngine(cfg);
}

void expect_valid_output(const ProfilerOutput& out, std::size_t keys) {
  EXPECT_FALSE(out.strategy.empty());
  EXPECT_EQ(out.order.size(), keys);
  std::set<std::uint64_t> unique(out.order.begin(), out.order.end());
  EXPECT_EQ(unique.size(), keys) << "ordering must be a permutation";
  EXPECT_GE(out.costs.input_prep_s, 0.0);
  EXPECT_GT(out.costs.baselines_s, 0.0);
  EXPECT_GE(out.costs.tiering_s, 0.0);
  EXPECT_GT(out.baselines.slow.runtime_ns, 0.0);
  EXPECT_GT(out.baselines.fast.runtime_ns, 0.0);
}

TEST(Profilers, MnemoTOutputIsValid) {
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const ProfilerOutput out = run_mnemot_profiler(trace, engine);
  expect_valid_output(out, trace.key_count());
  EXPECT_FALSE(out.fast_baseline_inferred);
}

TEST(Profilers, InstrumentedOutputIsValid) {
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const ProfilerOutput out = run_instrumented_profiler(trace, engine);
  expect_valid_output(out, trace.key_count());
}

TEST(Profilers, MlBaselineOutputIsValid) {
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const ProfilerOutput out = run_ml_baseline_profiler(trace, engine);
  expect_valid_output(out, trace.key_count());
  EXPECT_TRUE(out.fast_baseline_inferred);
}

TEST(Profilers, MnemoTTieringIsFasterThanInstrumentation) {
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const auto mnemot = run_mnemot_profiler(trace, engine);
  const auto instr = run_instrumented_profiler(trace, engine);
  // The per-access event stream has to cost more than a descriptor sort.
  EXPECT_LT(mnemot.costs.tiering_s, instr.costs.tiering_s);
}

TEST(Profilers, MnemoTAndInstrumentedAgreeOnHotKeys) {
  // Both compute accesses/size weights — MnemoT from the descriptor, the
  // instrumented profiler from its event log. On a hotspot workload the
  // two top-quartile sets overlap almost completely.
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const auto a = run_mnemot_profiler(trace, engine);
  const auto b = run_instrumented_profiler(trace, engine);
  const std::size_t quarter = trace.key_count() / 4;
  const std::set<std::uint64_t> top_a(a.order.begin(),
                                      a.order.begin() + quarter);
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < quarter; ++i) {
    if (top_a.contains(b.order[i])) ++overlap;
  }
  EXPECT_GT(static_cast<double>(overlap) / static_cast<double>(quarter), 0.8);
}

TEST(Profilers, MlInferenceErrorIsBounded) {
  const auto trace = small_trace();
  const auto engine = quick_engine();
  const auto out = run_ml_baseline_profiler(trace, engine);
  // The Tahoe-style model is approximate, but trained on the same suite
  // family it should land within 25%.
  EXPECT_LT(std::fabs(out.inferred_fast_runtime_error_pct), 25.0);
  EXPECT_GT(out.baselines.fast.throughput_ops,
            out.baselines.slow.throughput_ops * 0.8);
}

TEST(Profilers, CostsTotalSumsStages) {
  ProfilingCosts costs;
  costs.input_prep_s = 0.5;
  costs.baselines_s = 1.0;
  costs.tiering_s = 0.25;
  EXPECT_DOUBLE_EQ(costs.total_s(), 1.75);
}

}  // namespace
}  // namespace mnemo::core
