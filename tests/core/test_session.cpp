#include "core/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

namespace fs = std::filesystem;

workload::Trace small_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 200;
  spec.request_count = 2'000;
  return workload::Trace::generate(spec);
}

MnemoConfig quick_config() {
  MnemoConfig cfg;
  cfg.repeats = 1;
  cfg.threads = 1;
  return cfg;
}

struct SessionFixture : ::testing::Test {
  fs::path dir;
  void SetUp() override {
    dir = fs::path(testing::TempDir()) /
          (std::string("mnemo_session_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  SessionConfig cached_config(std::size_t threads = 1) const {
    SessionConfig sc;
    sc.mnemo = quick_config();
    sc.mnemo.threads = threads;
    sc.cache_dir = dir.string();
    return sc;
  }

  std::size_t files_for_stage(std::string_view stage) const {
    std::size_t n = 0;
    if (!fs::exists(dir)) return 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().filename().string().starts_with(std::string(stage) + "-")) {
        ++n;
      }
    }
    return n;
  }
};

TEST_F(SessionFixture, UncachedSessionMatchesTheMnemoFacade) {
  const workload::Trace trace = small_trace();
  const MnemoReport via_facade = Mnemo(quick_config()).profile(trace);

  SessionConfig sc;
  sc.mnemo = quick_config();
  Session session(trace, sc);
  const MnemoReport via_session = session.to_report();

  EXPECT_EQ(via_session.workload, via_facade.workload);
  EXPECT_TRUE(via_session.order == via_facade.order);
  EXPECT_TRUE(via_session.baselines == via_facade.baselines);
  EXPECT_TRUE(via_session.curve == via_facade.curve);
  EXPECT_TRUE(via_session.slo_choice == via_facade.slo_choice);
}

TEST_F(SessionFixture, WarmRerunExecutesZeroCampaignCells) {
  const workload::Trace trace = small_trace();

  Session cold(trace, cached_config());
  const ReportArtifact cold_report = cold.report();
  EXPECT_GT(cold.campaign_cells_run(), 0u);

  Session warm(trace, cached_config());
  const ReportArtifact warm_report = warm.report();

  // The incremental-rerun acceptance criterion: a fully warm session
  // never touches the emulator and reproduces the report byte for byte.
  EXPECT_EQ(warm.campaign_cells_run(), 0u);
  EXPECT_EQ(warm_report.text, cold_report.text);
  EXPECT_EQ(warm_report.csv, cold_report.csv);
  ASSERT_EQ(warm.stage_traces().size(), 1u);  // report alone satisfied it
  EXPECT_TRUE(warm.stage_traces()[0].from_cache);
}

TEST_F(SessionFixture, NewSloAgainstAWarmGridSkipsTheEmulator) {
  const workload::Trace trace = small_trace();
  Session cold(trace, cached_config());
  (void)cold.report();
  ASSERT_GT(cold.campaign_cells_run(), 0u);

  SessionConfig requery = cached_config();
  requery.mnemo.slo_slowdown = 0.3;  // different question, same grid
  Session warm(trace, requery);
  const AdviseArtifact& verdict = warm.advise();

  EXPECT_EQ(warm.campaign_cells_run(), 0u);
  EXPECT_EQ(verdict.slo_slowdown, 0.3);
  ASSERT_TRUE(verdict.result.feasible());
  // The grid was loaded, not recomputed; only advise was computed fresh.
  for (const StageTrace& t : warm.stage_traces()) {
    if (t.stage == "measure" || t.stage == "estimate") {
      EXPECT_TRUE(t.from_cache) << t.stage;
    }
  }
  EXPECT_EQ(files_for_stage("measure"), 1u);  // one grid serves both SLOs
  EXPECT_EQ(files_for_stage("advise"), 2u);
}

TEST_F(SessionFixture, CachedArtifactsAreBitIdenticalAcrossThreadCounts) {
  const workload::Trace trace = small_trace();

  // Ground truth: a cache-less serial session.
  SessionConfig plain;
  plain.mnemo = quick_config();
  Session reference(trace, plain);
  const MeasureArtifact ref_measure = reference.measure();
  const ReportArtifact ref_report = reference.report();

  // Fill the cache at one thread count, consume it at others. The measure
  // key deliberately excludes the thread count: results are bit-identical
  // at any count, so a grid measured at --threads 2 serves every run.
  Session writer(trace, cached_config(/*threads=*/2));
  (void)writer.report();
  EXPECT_GT(writer.campaign_cells_run(), 0u);
  EXPECT_TRUE(writer.measure() == ref_measure);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    Session consumer(trace, cached_config(threads));
    EXPECT_EQ(consumer.measure_key(), writer.measure_key());
    EXPECT_TRUE(consumer.measure() == ref_measure)
        << "threads=" << threads << ": cached grid differs from recomputed";
    EXPECT_EQ(consumer.report().text, ref_report.text) << threads;
    EXPECT_EQ(consumer.report().csv, ref_report.csv) << threads;
    EXPECT_EQ(consumer.campaign_cells_run(), 0u) << threads;
  }
}

TEST_F(SessionFixture, SetSloReusesTheGridInProcess) {
  Session session(small_trace(), cached_config());
  const ReportArtifact first = session.report();
  const std::size_t cells_after_first = session.campaign_cells_run();
  ASSERT_GT(cells_after_first, 0u);

  // Loosen the SLO until even the SlowMem-only split satisfies it: the
  // verdict moves to 0 FastMem keys without another campaign cell.
  const PerfBaselines& b = session.measure().baselines;
  ASSERT_GE(b.slow.throughput_ops, 0.5 * b.fast.throughput_ops);
  session.set_slo(0.5);
  const ReportArtifact second = session.report();
  EXPECT_EQ(session.campaign_cells_run(), cells_after_first);
  EXPECT_NE(second.text, first.text);
  ASSERT_TRUE(session.advise().result.feasible());
  EXPECT_EQ(session.advise().result.choice->point.fast_keys, 0u);
}

TEST_F(SessionFixture, NoCacheBypassesTheStoreEntirely) {
  const workload::Trace trace = small_trace();
  SessionConfig sc = cached_config();
  sc.use_cache = false;
  Session session(trace, sc);
  (void)session.report();
  EXPECT_GT(session.campaign_cells_run(), 0u);
  // Bypassed means bypassed: nothing read, nothing written.
  EXPECT_TRUE(session.store().events().empty());
  EXPECT_EQ(files_for_stage("measure"), 0u);

  Session again(trace, sc);
  (void)again.report();
  EXPECT_GT(again.campaign_cells_run(), 0u);
}

TEST_F(SessionFixture, DegradedGridIsNeverCached) {
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 250;
  spec.request_count = 2'500;
  const workload::Trace trace = workload::Trace::generate(spec);

  SessionConfig sc = cached_config();
  sc.mnemo.faults.poison_rate = 0.2;  // all-SlowMem baseline unmeasurable

  Session session(trace, sc);
  const MeasureArtifact& m = session.measure();
  ASSERT_TRUE(m.degraded);
  ASSERT_FALSE(m.failures.empty());

  // The poisoned grid must not be laundered into the cache as clean —
  // and downstream stages built on it must not persist either.
  (void)session.report();
  EXPECT_EQ(files_for_stage("measure"), 0u);
  EXPECT_EQ(files_for_stage("estimate"), 0u);
  EXPECT_EQ(files_for_stage("advise"), 0u);
  EXPECT_EQ(files_for_stage("report"), 0u);
  for (const StageTrace& t : session.stage_traces()) {
    if (t.stage != "characterize") {
      EXPECT_FALSE(t.saved) << t.stage;
    }
  }

  // Every later session re-measures; a degraded result is never warm.
  Session again(trace, sc);
  (void)again.measure();
  EXPECT_GT(again.campaign_cells_run(), 0u);
}

TEST_F(SessionFixture, FaultPlanParticipatesInTheMeasureKey) {
  const workload::Trace trace = small_trace();
  SessionConfig clean = cached_config();
  SessionConfig faulty = cached_config();
  faulty.mnemo.faults.transient_read_rate = 1e-9;

  Session a(trace, clean);
  Session b(trace, faulty);
  EXPECT_NE(a.measure_key(), b.measure_key());
  EXPECT_EQ(a.characterize_key(), b.characterize_key());
}

TEST_F(SessionFixture, PresentationKnobsStayOutOfTheMeasureKey) {
  const workload::Trace trace = small_trace();
  SessionConfig base = cached_config(/*threads=*/1);
  SessionConfig varied = cached_config(/*threads=*/8);
  varied.mnemo.fail_policy = faultinject::FailPolicy::kAbort;
  varied.mnemo.slo_slowdown = 0.42;

  Session a(trace, base);
  Session b(trace, varied);
  EXPECT_EQ(a.measure_key(), b.measure_key());
  EXPECT_NE(a.advise_key(), b.advise_key());  // the SLO is an advise input
}

TEST_F(SessionFixture, CorruptCacheEntryRecomputesTheSameAnswer) {
  const workload::Trace trace = small_trace();
  Session cold(trace, cached_config());
  const ReportArtifact expected = cold.report();

  // Truncate every cached artifact to garbage.
  for (const auto& e : fs::directory_iterator(dir)) {
    fs::resize_file(e.path(), 5);
  }

  Session recover(trace, cached_config());
  EXPECT_EQ(recover.report().text, expected.text);
  EXPECT_EQ(recover.report().csv, expected.csv);
  EXPECT_GT(recover.campaign_cells_run(), 0u);  // grid honestly re-run
  EXPECT_NE(recover.explain_cache().find("rejected artifacts"),
            std::string::npos);

  // And the rewritten cache is whole again.
  Session warm(trace, cached_config());
  EXPECT_EQ(warm.report().text, expected.text);
  EXPECT_EQ(warm.campaign_cells_run(), 0u);
}

TEST_F(SessionFixture, ExplainCacheNamesEveryStage) {
  Session session(small_trace(), cached_config());
  (void)session.report();
  const std::string explain = session.explain_cache();
  EXPECT_NE(explain.find("cache: " + dir.string()), std::string::npos);
  for (const char* stage :
       {"characterize", "measure", "estimate", "advise", "report"}) {
    EXPECT_NE(explain.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(explain.find("computed, saved"), std::string::npos);
}

TEST_F(SessionFixture, ExternalOrderIsPartOfTheCharacterizeKey) {
  const workload::Trace trace = small_trace();
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = order.size() - 1 - i;
  }

  SessionConfig sc;
  sc.mnemo = quick_config();
  sc.external_order = order;
  Session ext(trace, sc);
  EXPECT_EQ(ext.characterize().ordering, OrderingPolicy::kExternal);
  EXPECT_TRUE(ext.characterize().order == order);

  SessionConfig sc2 = sc;
  std::swap(sc2.external_order->front(), sc2.external_order->back());
  Session ext2(trace, sc2);
  EXPECT_NE(ext.characterize_key(), ext2.characterize_key());

  SessionConfig plain;
  plain.mnemo = quick_config();
  Session touch(trace, plain);
  EXPECT_NE(touch.characterize_key(), ext.characterize_key());
}

}  // namespace
}  // namespace mnemo::core
