#include "core/migration.hpp"

#include <gtest/gtest.h>

#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace drift_trace(std::size_t keys = 400,
                            std::size_t requests = 20'000) {
  workload::WorkloadSpec spec = workload::paper_workload("news_feed");
  spec.key_count = keys;
  spec.request_count = requests;
  spec.dist_params.latest_drift =
      static_cast<double>(keys) / static_cast<double>(requests);
  return workload::Trace::generate(spec);
}

workload::Trace stable_trace(std::size_t keys = 400,
                             std::size_t requests = 20'000) {
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = keys;
  spec.request_count = requests;
  return workload::Trace::generate(spec);
}

MigrationConfig config_for(const workload::Trace& trace,
                           double budget_fraction) {
  MigrationConfig cfg;
  cfg.fast_budget_bytes = static_cast<std::uint64_t>(
      budget_fraction * static_cast<double>(trace.dataset_bytes()));
  cfg.epoch_requests = 1'000;  // 20 re-tiering decisions over the run
  return cfg;
}

SensitivityConfig quick_sensitivity() {
  SensitivityConfig cfg;
  cfg.repeats = 1;
  return cfg;
}

TEST(DynamicTierer, RunProducesCoherentResult) {
  const auto trace = stable_trace();
  const DynamicTierer tierer(quick_sensitivity(), config_for(trace, 0.3));
  const MigrationResult r = tierer.run(trace);
  EXPECT_EQ(r.measurement.requests, trace.requests().size());
  EXPECT_GT(r.measurement.throughput_ops, 0.0);
  EXPECT_GT(r.epochs, 0u);
  EXPECT_GT(r.migrations, 0u) << "the ID-order start is not the hot set";
  EXPECT_GT(r.bytes_migrated, 0u);
  EXPECT_GT(r.migration_ns, 0.0);
}

TEST(DynamicTierer, LearnsStableHotSetsToNearOracle) {
  const auto trace = stable_trace();
  const DynamicTierer tierer(quick_sensitivity(), config_for(trace, 0.3));
  const MigrationResult dynamic = tierer.run(trace);
  const RunMeasurement oracle = tierer.run_static_oracle(trace);
  // On a stationary hotspot the controller should converge close to the
  // whole-trace oracle (it pays migration and learning costs, so a small
  // deficit is expected).
  EXPECT_GT(dynamic.measurement.throughput_ops,
            oracle.throughput_ops * 0.85);
}

TEST(DynamicTierer, BeatsStaticPlacementOnDriftingWorkloads) {
  const auto trace = drift_trace();
  MigrationConfig cfg = config_for(trace, 0.3);
  cfg.migration_bytes_per_epoch = 4ULL << 20;
  const DynamicTierer tierer(quick_sensitivity(), cfg);
  const MigrationResult dynamic = tierer.run(trace);
  const RunMeasurement oracle = tierer.run_static_oracle(trace);
  // The drifting hot set makes every static placement stale; following
  // it dynamically wins even with foreground migration stalls.
  EXPECT_GT(dynamic.measurement.throughput_ops, oracle.throughput_ops);

  // With migrations copied in the background the margin is decisive.
  cfg.foreground = false;
  const DynamicTierer bg(quick_sensitivity(), cfg);
  const MigrationResult background = bg.run(trace);
  EXPECT_GT(background.measurement.throughput_ops,
            oracle.throughput_ops * 1.05);
}

TEST(DynamicTierer, PredictionIsWhatWinsOnDrift) {
  const auto trace = drift_trace();
  MigrationConfig cfg = config_for(trace, 0.3);
  cfg.migration_bytes_per_epoch = 4ULL << 20;
  cfg.foreground = false;
  MigrationConfig reactive_cfg = cfg;
  reactive_cfg.predictive = false;
  const DynamicTierer predictive(quick_sensitivity(), cfg);
  const DynamicTierer reactive(quick_sensitivity(), reactive_cfg);
  // A purely reactive controller promotes yesterday's hot keys and loses
  // the recency-skewed head of the drifting distribution.
  EXPECT_GT(predictive.run(trace).measurement.throughput_ops,
            reactive.run(trace).measurement.throughput_ops);
}

TEST(DynamicTierer, MigrationBudgetCapsBytesMoved) {
  const auto trace = drift_trace();
  MigrationConfig cfg = config_for(trace, 0.3);
  cfg.migration_bytes_per_epoch = 512 * 1024;
  const DynamicTierer tierer(quick_sensitivity(), cfg);
  const MigrationResult r = tierer.run(trace);
  // Per-epoch cap: total moved <= epochs * (cap + one record overshoot).
  const std::uint64_t max_record =
      *std::max_element(trace.key_sizes().begin(), trace.key_sizes().end());
  EXPECT_LE(r.bytes_migrated,
            r.epochs * (cfg.migration_bytes_per_epoch + max_record));
}

TEST(DynamicTierer, BackgroundModeExcludesMigrationFromRuntime) {
  const auto trace = stable_trace(200, 5'000);
  MigrationConfig fg_cfg = config_for(trace, 0.3);
  MigrationConfig bg_cfg = fg_cfg;
  bg_cfg.foreground = false;
  const DynamicTierer fg(quick_sensitivity(), fg_cfg);
  const DynamicTierer bg(quick_sensitivity(), bg_cfg);
  const MigrationResult rf = fg.run(trace);
  const MigrationResult rb = bg.run(trace);
  EXPECT_NEAR(rf.measurement.runtime_ns - rf.migration_ns,
              rb.measurement.runtime_ns, rb.measurement.runtime_ns * 1e-9);
}

TEST(DynamicTierer, FastBudgetIsRespected) {
  const auto trace = stable_trace(200, 5'000);
  const MigrationConfig cfg = config_for(trace, 0.25);
  const DynamicTierer tierer(quick_sensitivity(), cfg);
  const MigrationResult r = tierer.run(trace);
  (void)r;
  // The controller's desired set never exceeds the byte budget by
  // construction; rejected promotions are surfaced rather than forced.
  SUCCEED();
}

}  // namespace
}  // namespace mnemo::core
