// Whole-pipeline determinism: every result in this repository is a pure
// function of the configuration seeds — reruns produce byte-identical
// artifacts. This is what makes the benches reproducible and EXPERIMENTS.md
// numbers stable across machines.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/migration.hpp"
#include "core/mnemo.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace small_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("trending_preview");
  spec.key_count = 400;
  spec.request_count = 4'000;
  return workload::Trace::generate(spec);
}

std::string file_contents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Determinism, ReportsAreBitwiseReproducible) {
  const auto trace = small_trace();
  MnemoConfig cfg;
  cfg.repeats = 2;
  cfg.ordering = OrderingPolicy::kTiered;

  const MnemoT a(cfg);
  const MnemoT b(cfg);
  const MnemoReport ra = a.profile(trace);
  const MnemoReport rb = b.profile(trace);

  EXPECT_EQ(ra.baselines.fast.runtime_ns, rb.baselines.fast.runtime_ns);
  EXPECT_EQ(ra.baselines.slow.p99_ns, rb.baselines.slow.p99_ns);
  EXPECT_EQ(ra.order, rb.order);
  ASSERT_EQ(ra.curve.points.size(), rb.curve.points.size());
  for (std::size_t i = 0; i < ra.curve.points.size(); ++i) {
    ASSERT_EQ(ra.curve.points[i].est_throughput_ops,
              rb.curve.points[i].est_throughput_ops);
  }

  const std::string pa = ::testing::TempDir() + "/det_a.csv";
  const std::string pb = ::testing::TempDir() + "/det_b.csv";
  ra.write_csv(pa);
  rb.write_csv(pb);
  EXPECT_EQ(file_contents(pa), file_contents(pb));
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(Determinism, SeedChangesMoveTheMeasurementsNotTheShape) {
  const auto trace = small_trace();
  MnemoConfig cfg;
  cfg.repeats = 1;
  MnemoConfig other = cfg;
  other.seed = cfg.seed + 1;
  const Mnemo a(cfg);
  const Mnemo b(other);
  const MnemoReport ra = a.profile(trace);
  const MnemoReport rb = b.profile(trace);
  // Jitter draws differ, so exact values differ...
  EXPECT_NE(ra.baselines.fast.runtime_ns, rb.baselines.fast.runtime_ns);
  // ...but only by noise: the measured sensitivity is stable.
  EXPECT_NEAR(ra.baselines.sensitivity(), rb.baselines.sensitivity(), 0.02);
}

TEST(Determinism, DynamicTieringIsReproducible) {
  const auto trace = small_trace();
  SensitivityConfig sens;
  sens.repeats = 1;
  MigrationConfig mig;
  mig.fast_budget_bytes = trace.dataset_bytes() / 3;
  mig.epoch_requests = 500;
  const DynamicTierer t1(sens, mig);
  const DynamicTierer t2(sens, mig);
  const MigrationResult r1 = t1.run(trace);
  const MigrationResult r2 = t2.run(trace);
  EXPECT_EQ(r1.measurement.runtime_ns, r2.measurement.runtime_ns);
  EXPECT_EQ(r1.migrations, r2.migrations);
  EXPECT_EQ(r1.bytes_migrated, r2.bytes_migrated);
}

TEST(Determinism, ValidationRunsMatchAcrossProcessesOfTheSuite) {
  // The same (trace, placement, repeat) triple always measures the same:
  // run_once is a pure function.
  const auto trace = small_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  const hybridmem::Placement half =
      hybridmem::Placement::from_order(
          PatternEngine::analyze(trace).touch_order, trace.key_count() / 2);
  const RunMeasurement m1 = engine.run_once(trace, half, 3);
  const RunMeasurement m2 = engine.run_once(trace, half, 3);
  EXPECT_EQ(m1.runtime_ns, m2.runtime_ns);
  EXPECT_EQ(m1.p99_ns, m2.p99_ns);
  EXPECT_EQ(m1.llc_hit_rate, m2.llc_hit_rate);
}

}  // namespace
}  // namespace mnemo::core
