// Property tests: invariants of the estimate pipeline over randomized
// workloads — any distribution, any ratio, any record-size type, both
// estimate models, all store architectures.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/mnemo.hpp"
#include "util/rng.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::WorkloadSpec random_spec(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "random_" + std::to_string(seed);
  const workload::DistributionKind kinds[] = {
      workload::DistributionKind::kUniform,
      workload::DistributionKind::kZipfian,
      workload::DistributionKind::kScrambledZipfian,
      workload::DistributionKind::kLatest,
      workload::DistributionKind::kHotspot,
  };
  spec.distribution = kinds[rng.uniform(0, 4)];
  spec.dist_params.zipf_theta = 0.5 + 0.45 * rng.next_double();
  spec.dist_params.hot_key_fraction = 0.05 + 0.4 * rng.next_double();
  spec.dist_params.hot_op_fraction = 0.5 + 0.45 * rng.next_double();
  if (spec.distribution == workload::DistributionKind::kLatest &&
      rng.next_double() < 0.5) {
    spec.dist_params.latest_drift = 0.05 * rng.next_double();
  }
  spec.read_fraction = rng.next_double();
  const workload::RecordSizeType sizes[] = {
      workload::RecordSizeType::kThumbnail,
      workload::RecordSizeType::kTextPost,
      workload::RecordSizeType::kPhotoCaption,
      workload::RecordSizeType::kPreviewMix,
  };
  spec.record_size = sizes[rng.uniform(0, 3)];
  spec.key_count = 100 + rng.uniform(0, 400);
  spec.request_count = 2'000 + rng.uniform(0, 3'000);
  spec.seed = seed * 31 + 7;
  return spec;
}

class EstimateProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimateProperties, CurveInvariantsHoldForRandomWorkloads) {
  const workload::WorkloadSpec spec = random_spec(GetParam());
  const workload::Trace trace = workload::Trace::generate(spec);

  MnemoConfig cfg;
  cfg.repeats = 1;
  cfg.store = static_cast<kvstore::StoreKind>(GetParam() % 3);
  cfg.ordering = GetParam() % 2 == 0 ? OrderingPolicy::kTouchOrder
                                     : OrderingPolicy::kTiered;
  cfg.estimate_model = GetParam() % 4 < 2 ? EstimateModel::kSizeAware
                                          : EstimateModel::kUniformDelta;
  const Mnemo mnemo(cfg);
  const MnemoReport report = mnemo.profile(trace);

  // 1. One row per prefix; costs strictly increasing from floor to 1.
  ASSERT_EQ(report.curve.points.size(), trace.key_count() + 1);
  ASSERT_DOUBLE_EQ(report.curve.points.front().cost_factor, 0.2);
  ASSERT_NEAR(report.curve.points.back().cost_factor, 1.0, 1e-9);
  for (std::size_t i = 1; i < report.curve.points.size(); ++i) {
    ASSERT_GT(report.curve.points[i].cost_factor,
              report.curve.points[i - 1].cost_factor);
    ASSERT_GE(report.curve.points[i].fast_bytes,
              report.curve.points[i - 1].fast_bytes);
  }

  // 2. Endpoints pinned to the measured baselines.
  ASSERT_NEAR(report.curve.points.front().est_runtime_ns,
              report.baselines.slow.runtime_ns,
              report.baselines.slow.runtime_ns * 1e-9);
  ASSERT_NEAR(report.curve.points.back().est_runtime_ns,
              report.baselines.fast.runtime_ns,
              report.baselines.fast.runtime_ns * 1e-3);

  // 3. Throughput estimates are finite and bounded by a generous factor
  // of the baseline bracket.
  for (const EstimatePoint& p : report.curve.points) {
    ASSERT_TRUE(std::isfinite(p.est_throughput_ops));
    ASSERT_GT(p.est_throughput_ops,
              report.baselines.slow.throughput_ops * 0.5);
    ASSERT_LT(p.est_throughput_ops,
              report.baselines.fast.throughput_ops * 2.0);
  }

  // 4. The SLO choice, when present, satisfies its own contract.
  if (report.slo_choice) {
    ASSERT_LE(report.slo_choice->slowdown_vs_fast,
              cfg.slo_slowdown + 1e-9);
    ASSERT_GE(report.slo_choice->cost_factor, 0.2 - 1e-9);
  }

  // 5. A mid-curve estimate validates within 5% even on adversarial
  // random workloads (paper-scale sweeps land well under 1%).
  const std::size_t mid = report.curve.points.size() / 2;
  const RunMeasurement measured =
      mnemo.validate(trace, report.order, report.curve.points[mid]);
  const double err = estimate_error_pct(
      measured.throughput_ops, report.curve.points[mid].est_throughput_ops);
  ASSERT_LT(std::fabs(err), 5.0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, EstimateProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- EstimateCurve::at_budget / throughput_at lookup properties ----

class CurveLookupProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Profile a random workload with the uniform-delta model (the model
  /// whose refunds are per-request constants, so monotonicity statements
  /// are exact) and return the report.
  MnemoReport profile() {
    const workload::WorkloadSpec spec = random_spec(GetParam() + 1000);
    trace_ = workload::Trace::generate(spec);
    MnemoConfig cfg;
    cfg.repeats = 1;
    cfg.estimate_model = EstimateModel::kUniformDelta;
    return Mnemo(cfg).profile(trace_);
  }

  workload::Trace trace_;
};

TEST_P(CurveLookupProperties, BudgetBelowFirstPointReturnsSlowMemBound) {
  const MnemoReport report = profile();
  const EstimateCurve& curve = report.curve;
  // Row 0 is the SlowMem-only bound at 0 FastMem bytes: any budget —
  // including one smaller than the first tiered key — realizes it.
  ASSERT_EQ(curve.points.front().fast_bytes, 0u);
  EXPECT_EQ(&curve.at_budget(0), &curve.points.front());
  const std::uint64_t below_first = curve.points[1].fast_bytes - 1;
  const EstimatePoint& p = curve.at_budget(below_first);
  EXPECT_EQ(p.fast_keys, 0u);
  EXPECT_EQ(curve.throughput_at(below_first),
            curve.points.front().est_throughput_ops);
}

TEST_P(CurveLookupProperties, BudgetAboveLastPointReturnsFastMemBound) {
  const MnemoReport report = profile();
  const EstimateCurve& curve = report.curve;
  const std::uint64_t above_last = curve.points.back().fast_bytes + 1;
  EXPECT_EQ(&curve.at_budget(above_last), &curve.points.back());
  EXPECT_EQ(&curve.at_budget(~0ULL), &curve.points.back());
  EXPECT_EQ(curve.throughput_at(~0ULL),
            curve.points.back().est_throughput_ops);
}

TEST_P(CurveLookupProperties, ExactBoundaryBudgetsRealizeTheirOwnRow) {
  const MnemoReport report = profile();
  const EstimateCurve& curve = report.curve;
  for (std::size_t i = 0; i < curve.points.size();
       i += std::max<std::size_t>(1, curve.points.size() / 17)) {
    const EstimatePoint& p = curve.points[i];
    const EstimatePoint& got = curve.at_budget(p.fast_bytes);
    // The realized configuration fits the budget exactly, and is the
    // deepest prefix that does (later rows need strictly more bytes).
    EXPECT_EQ(got.fast_bytes, p.fast_bytes);
    EXPECT_GE(got.fast_keys, p.fast_keys);
    if (got.fast_keys + 1 < curve.points.size()) {
      EXPECT_GT(curve.points[got.fast_keys + 1].fast_bytes, p.fast_bytes);
    }
    if (p.fast_bytes > 0) {
      // One byte short of the boundary must fall back to a shallower row.
      EXPECT_LT(curve.at_budget(p.fast_bytes - 1).fast_bytes, p.fast_bytes);
    }
  }
}

TEST_P(CurveLookupProperties, ThroughputMonotoneInBudgetUnderUniformDelta) {
  const MnemoReport report = profile();
  const EstimateCurve& curve = report.curve;
  // Under kUniformDelta every key refunds reads*dr + writes*dw; with
  // non-negative measured deltas the curve is non-decreasing, so a bigger
  // budget can never buy less estimated throughput. (Negative deltas
  // would mean SlowMem outran FastMem — excluded by the platform model,
  // but guard so a noisy run skips rather than asserts a vacuous truth.)
  if (report.baselines.read_delta_ns() < 0.0 ||
      report.baselines.write_delta_ns() < 0.0) {
    GTEST_SKIP() << "degenerate baselines: SlowMem faster than FastMem";
  }
  const std::uint64_t last = curve.points.back().fast_bytes;
  double prev = curve.throughput_at(0);
  const std::uint64_t step = std::max<std::uint64_t>(1, last / 97);
  for (std::uint64_t budget = 0; budget <= last; budget += step) {
    const double thr = curve.throughput_at(budget);
    EXPECT_GE(thr, prev - 1e-9) << "budget " << budget;
    prev = thr;
  }
  EXPECT_GE(curve.throughput_at(last), curve.throughput_at(0));
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, CurveLookupProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mnemo::core
