#include "core/tiering.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mnemo::core {
namespace {

AccessPattern make_pattern(std::vector<std::uint64_t> reads,
                           std::vector<std::uint64_t> sizes) {
  AccessPattern p;
  p.writes.assign(reads.size(), 0);
  p.reads = std::move(reads);
  p.sizes = std::move(sizes);
  p.touch_order.resize(p.reads.size());
  for (std::size_t i = 0; i < p.touch_order.size(); ++i) {
    p.touch_order[i] = i;
  }
  return p;
}

TEST(Tiering, WeightsAreAccessesOverSize) {
  const AccessPattern p = make_pattern({10, 10, 5}, {100, 50, 100});
  const auto w = TieringEngine::weights(p);
  EXPECT_DOUBLE_EQ(w[0], 0.1);
  EXPECT_DOUBLE_EQ(w[1], 0.2);
  EXPECT_DOUBLE_EQ(w[2], 0.05);
}

TEST(Tiering, PriorityOrderHotAndSmallFirst) {
  // Key 1: hot & small (best). Key 0: hot & big. Key 2: cold & big (worst).
  const AccessPattern p = make_pattern({10, 10, 5}, {100, 50, 100});
  const auto order = TieringEngine::priority_order(p);
  const std::vector<std::uint64_t> expected = {1, 0, 2};
  EXPECT_EQ(order, expected);
}

TEST(Tiering, TiesBreakByKeyIdForDeterminism) {
  const AccessPattern p = make_pattern({5, 5, 5}, {100, 100, 100});
  const auto order = TieringEngine::priority_order(p);
  const std::vector<std::uint64_t> expected = {0, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(Tiering, PriorityOrderIsPermutation) {
  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t k = 0; k < 500; ++k) {
    reads.push_back((k * 37) % 101);
    sizes.push_back(64 + (k * 13) % 4096);
  }
  const auto order =
      TieringEngine::priority_order(make_pattern(reads, sizes));
  std::set<std::uint64_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(Tiering, CapturedAccessesRespectsBudget) {
  const AccessPattern p = make_pattern({10, 20, 30}, {100, 100, 100});
  const std::vector<std::uint64_t> order = {2, 1, 0};
  EXPECT_EQ(TieringEngine::captured_accesses(p, order, 0), 0u);
  EXPECT_EQ(TieringEngine::captured_accesses(p, order, 100), 30u);
  EXPECT_EQ(TieringEngine::captured_accesses(p, order, 250), 50u);
  EXPECT_EQ(TieringEngine::captured_accesses(p, order, 300), 60u);
}

TEST(Tiering, KnapsackMatchesBruteForceOnSmallInstances) {
  // 4 items, budget 10 cells of 1 byte.
  const AccessPattern p =
      make_pattern({10, 7, 12, 3}, {6, 4, 7, 2});
  const auto chosen = TieringEngine::knapsack_select(p, 10, 1);
  std::uint64_t value = 0;
  std::uint64_t weight = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    if (chosen[k]) {
      value += p.reads[k];
      weight += p.sizes[k];
    }
  }
  EXPECT_LE(weight, 10u);
  // Brute force over all 16 subsets.
  std::uint64_t best = 0;
  for (int mask = 0; mask < 16; ++mask) {
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    for (int k = 0; k < 4; ++k) {
      if (mask & (1 << k)) {
        v += p.reads[static_cast<std::size_t>(k)];
        w += p.sizes[static_cast<std::size_t>(k)];
      }
    }
    if (w <= 10) best = std::max(best, v);
  }
  EXPECT_EQ(value, best);
}

TEST(Tiering, KnapsackBeatsGreedyWhereGreedyFails) {
  // Classic counterexample: greedy by density picks the small dense item
  // and wastes capacity; knapsack packs the exact fit.
  //   item0: value 60, size 10 (density 6)
  //   item1: value 100, size 20 (density 5)
  //   item2: value 120, size 30 (density 4)
  // budget 50: optimal = {1,2} = 220; greedy-by-density = {0,1} +
  // nothing else fits fully... greedy = 60+100 = 160 then item2 doesn't fit.
  const AccessPattern p = make_pattern({60, 100, 120}, {10, 20, 30});
  const auto greedy_order = TieringEngine::priority_order(p);
  const std::uint64_t greedy =
      TieringEngine::captured_accesses(p, greedy_order, 50);
  const auto chosen = TieringEngine::knapsack_select(p, 50, 1);
  std::uint64_t knapsack = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    if (chosen[k]) knapsack += p.reads[k];
  }
  EXPECT_EQ(greedy, 160u);
  EXPECT_EQ(knapsack, 220u);
}

TEST(Tiering, KnapsackZeroBudgetSelectsNothing) {
  const AccessPattern p = make_pattern({5, 5}, {10, 10});
  const auto chosen = TieringEngine::knapsack_select(p, 0, 1);
  EXPECT_FALSE(chosen[0]);
  EXPECT_FALSE(chosen[1]);
}

TEST(Tiering, KnapsackNeverExceedsBudget) {
  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t k = 0; k < 60; ++k) {
    reads.push_back(1 + (k * 7) % 50);
    sizes.push_back(1 + (k * 11) % 40);
  }
  const AccessPattern p = make_pattern(reads, sizes);
  for (const std::uint64_t budget : {10ULL, 100ULL, 500ULL}) {
    const auto chosen = TieringEngine::knapsack_select(p, budget, 1);
    std::uint64_t weight = 0;
    for (std::size_t k = 0; k < 60; ++k) {
      // The DP quantizes sizes upward, so the true weight is bounded by
      // the budget as well.
      if (chosen[k]) weight += p.sizes[k];
    }
    EXPECT_LE(weight, budget);
  }
}

}  // namespace
}  // namespace mnemo::core
