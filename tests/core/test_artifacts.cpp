#include "core/artifacts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mnemo::core {
namespace {

/// The pipeline's cache contract: load(save(x)) is bit-identical for every
/// artifact type. Checked two ways — field equality after a round trip,
/// and byte equality of the re-serialized stream (so a field that decodes
/// "close enough" but re-encodes differently still fails).
template <typename A>
void expect_bit_identical_round_trip(const A& artifact) {
  util::BinWriter w;
  artifact.serialize(w);

  util::BinReader r(w.buffer());
  const A back = A::deserialize(r);
  EXPECT_TRUE(r.exhausted()) << A::kStage << ": trailing bytes after decode";
  EXPECT_TRUE(back == artifact) << A::kStage << ": fields changed";

  util::BinWriter w2;
  back.serialize(w2);
  EXPECT_EQ(w2.buffer(), w.buffer()) << A::kStage << ": bytes changed";
}

RunMeasurement full_measurement(double scale) {
  RunMeasurement m;
  m.runtime_ns = 1.5e9 * scale;
  m.throughput_ops = 123456.25 * scale;
  m.avg_latency_ns = 812.5 / scale;
  m.avg_read_ns = 700.125;
  m.avg_write_ns = 950.875;
  m.p95_ns = 2100.0;
  m.p99_ns = 4200.0;
  m.requests = 200000;
  m.reads = 150001;
  m.writes = 49999;
  m.llc_hit_rate = 0.912345;
  m.read_vs_bytes = {600.0, 0.25};
  m.write_vs_bytes = {800.0, 0.5};
  for (int i = 0; i < 500; ++i) m.latency_hist.add(10.0 + 37.0 * i);
  m.faults.transient_faults = 7;
  m.faults.transient_retries = 9;
  m.faults.transient_failures = 1;
  m.faults.poison_hits = 3;
  m.faults.degraded_accesses = 42;
  return m;
}

CellFailure full_failure() {
  CellFailure f;
  f.cell = 11;
  f.fast_keys = 250;
  f.repeat = 2;
  f.attempts = 3;
  f.error.code = util::ErrorCode::kRetriesExhausted;
  f.error.message = "read of key 98 kept faulting";
  f.error.key = 98;
  f.error.requested_bytes = 4096;
  f.error.available_bytes = 1024;
  f.error.attempts = 3;
  f.faults.transient_faults = 5;
  f.faults.transient_retries = 5;
  return f;
}

TEST(ArtifactRoundTrip, Measurement) {
  util::BinWriter w;
  write_measurement(w, full_measurement(1.0));
  util::BinReader r(w.buffer());
  const RunMeasurement back = read_measurement(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(back == full_measurement(1.0));
}

TEST(ArtifactRoundTrip, CellFailure) {
  util::BinWriter w;
  write_cell_failure(w, full_failure());
  util::BinReader r(w.buffer());
  EXPECT_TRUE(read_cell_failure(r) == full_failure());
  EXPECT_TRUE(r.exhausted());
}

TEST(ArtifactRoundTrip, Characterize) {
  CharacterizeArtifact a;
  a.ordering = OrderingPolicy::kTiered;
  a.pattern.reads = {5, 0, 12};
  a.pattern.writes = {1, 2, 0};
  a.pattern.sizes = {64, 900, 128};
  a.pattern.touch_order = {2, 0, 1};
  a.order = {2, 0, 1};
  expect_bit_identical_round_trip(a);
}

TEST(ArtifactRoundTrip, CharacterizeEmpty) {
  expect_bit_identical_round_trip(CharacterizeArtifact{});
}

TEST(ArtifactRoundTrip, MeasureHealthy) {
  MeasureArtifact a;
  a.baselines.fast = full_measurement(1.0);
  a.baselines.slow = full_measurement(0.5);
  expect_bit_identical_round_trip(a);
}

TEST(ArtifactRoundTrip, MeasureDegradedWithLedger) {
  MeasureArtifact a;
  a.baselines.fast = full_measurement(1.0);
  a.degraded = true;
  a.failures = {full_failure(), full_failure()};
  a.failures[1].cell = 12;
  a.failures[1].error.code = util::ErrorCode::kFaultInjected;
  expect_bit_identical_round_trip(a);
}

TEST(ArtifactRoundTrip, Estimate) {
  EstimateArtifact a;
  for (int i = 0; i < 8; ++i) {
    EstimatePoint p;
    p.last_key = static_cast<std::uint64_t>(i * 3);
    p.fast_keys = static_cast<std::size_t>(i);
    p.fast_bytes = static_cast<std::uint64_t>(i) * 512;
    p.est_runtime_ns = 1e9 - 1e7 * i;
    p.est_throughput_ops = 1000.0 + 10.5 * i;
    p.est_avg_latency_ns = 900.0 - 5.25 * i;
    p.cost_factor = 0.2 + 0.1 * i;
    a.curve.points.push_back(p);
  }
  expect_bit_identical_round_trip(a);
}

TEST(ArtifactRoundTrip, AdviseWithChoice) {
  AdviseArtifact a;
  a.slo_slowdown = 0.07;
  a.price_factor = 0.15;
  a.result.outcome = SloOutcome::kChosen;
  SloChoice c;
  c.point.last_key = 17;
  c.point.fast_keys = 40;
  c.point.fast_bytes = 8192;
  c.point.est_throughput_ops = 930.5;
  c.point.cost_factor = 0.44;
  c.slowdown_vs_fast = 0.069;
  c.cost_factor = 0.44;
  c.savings_vs_fast = 0.56;
  a.result.choice = c;
  expect_bit_identical_round_trip(a);
}

TEST(ArtifactRoundTrip, AdviseInfeasibleAndDegraded) {
  AdviseArtifact infeasible;
  infeasible.slo_slowdown = -0.05;
  infeasible.result.outcome = SloOutcome::kNoFeasibleSplit;
  expect_bit_identical_round_trip(infeasible);

  AdviseArtifact degraded;
  degraded.degraded = true;
  expect_bit_identical_round_trip(degraded);
}

TEST(ArtifactRoundTrip, Report) {
  ReportArtifact a;
  a.text = "workload: trending\nbaselines: ...\n";
  a.csv = "key_id,est_throughput_ops,cost_reduction_factor\n1,2.5,0.3\n";
  expect_bit_identical_round_trip(a);
  expect_bit_identical_round_trip(ReportArtifact{});
}

TEST(ArtifactRoundTrip, HistogramCountsSurviveExactly) {
  // The histogram is the largest fixed-shape field; make sure restore()
  // rebuilds the total, not just the buckets.
  MeasureArtifact a;
  for (int i = 0; i < 1000; ++i) a.baselines.fast.latency_hist.add(50.0 * i);
  util::BinWriter w;
  a.serialize(w);
  util::BinReader r(w.buffer());
  const MeasureArtifact back = MeasureArtifact::deserialize(r);
  EXPECT_EQ(back.baselines.fast.latency_hist.count(),
            a.baselines.fast.latency_hist.count());
  EXPECT_TRUE(back.baselines.fast.latency_hist ==
              a.baselines.fast.latency_hist);
}

TEST(ArtifactSchema, StagesAndSchemasAreDistinct) {
  EXPECT_NE(CharacterizeArtifact::kSchema, MeasureArtifact::kSchema);
  EXPECT_NE(MeasureArtifact::kSchema, EstimateArtifact::kSchema);
  EXPECT_NE(EstimateArtifact::kSchema, AdviseArtifact::kSchema);
  EXPECT_NE(AdviseArtifact::kSchema, ReportArtifact::kSchema);
  EXPECT_EQ(std::string(MeasureArtifact::kSchema), "mnemo.artifact.measure");
}

}  // namespace
}  // namespace mnemo::core
