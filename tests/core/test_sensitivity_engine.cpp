#include "core/sensitivity_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

using hybridmem::NodeId;
using hybridmem::Placement;

workload::Trace small_trace(std::string_view name = "timeline") {
  workload::WorkloadSpec spec = workload::paper_workload(name);
  spec.key_count = 500;
  spec.request_count = 5'000;
  return workload::Trace::generate(spec);
}

SensitivityConfig fast_config() {
  SensitivityConfig cfg;
  cfg.repeats = 2;
  return cfg;
}

TEST(SensitivityEngine, RunOnceProducesCoherentMeasurement) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace();
  const RunMeasurement m = engine.run_once(
      trace, Placement(trace.key_count(), NodeId::kFast));
  EXPECT_EQ(m.requests, trace.requests().size());
  EXPECT_EQ(m.reads + m.writes, m.requests);
  EXPECT_GT(m.runtime_ns, 0.0);
  EXPECT_NEAR(m.avg_latency_ns, m.runtime_ns / static_cast<double>(m.requests),
              1e-6);
  EXPECT_NEAR(m.throughput_ops,
              static_cast<double>(m.requests) / (m.runtime_ns / 1e9), 1e-3);
  EXPECT_GE(m.p99_ns, m.p95_ns);
  EXPECT_GE(m.p95_ns, 0.0);
}

TEST(SensitivityEngine, RunOnceIsDeterministicPerRepeatIndex) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace();
  const Placement placement(trace.key_count(), NodeId::kSlow);
  const RunMeasurement a = engine.run_once(trace, placement, 0);
  const RunMeasurement b = engine.run_once(trace, placement, 0);
  EXPECT_DOUBLE_EQ(a.runtime_ns, b.runtime_ns);
  const RunMeasurement c = engine.run_once(trace, placement, 1);
  EXPECT_NE(a.runtime_ns, c.runtime_ns) << "repeats use distinct seeds";
}

TEST(SensitivityEngine, MeasureAveragesRepeats) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace();
  const Placement placement(trace.key_count(), NodeId::kFast);
  const RunMeasurement avg = engine.measure(trace, placement);
  const RunMeasurement r0 = engine.run_once(trace, placement, 0);
  const RunMeasurement r1 = engine.run_once(trace, placement, 1);
  EXPECT_NEAR(avg.runtime_ns, (r0.runtime_ns + r1.runtime_ns) / 2.0, 1e-3);
}

TEST(SensitivityEngine, BaselinesOrderFastAboveSlow) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace();
  const PerfBaselines b = engine.baselines(trace);
  EXPECT_GT(b.fast.throughput_ops, b.slow.throughput_ops);
  EXPECT_LT(b.fast.runtime_ns, b.slow.runtime_ns);
  EXPECT_GT(b.read_delta_ns(), 0.0);
  EXPECT_GT(b.sensitivity(), 0.0);
}

TEST(SensitivityEngine, IntermediatePlacementBetweenBaselines) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace();
  const PerfBaselines b = engine.baselines(trace);
  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  const RunMeasurement mid = engine.measure(
      trace, Placement::from_order(order, trace.key_count() / 2));
  EXPECT_GT(mid.throughput_ops, b.slow.throughput_ops * 0.98);
  EXPECT_LT(mid.throughput_ops, b.fast.throughput_ops * 1.02);
}

TEST(SensitivityEngine, WriteHeavyWorkloadReportsWriteLatencies) {
  const SensitivityEngine engine(fast_config());
  const auto trace = small_trace("edit_thumbnail");
  const RunMeasurement m = engine.run_once(
      trace, Placement(trace.key_count(), NodeId::kFast));
  EXPECT_GT(m.writes, 0u);
  EXPECT_GT(m.avg_write_ns, 0.0);
  EXPECT_GT(m.avg_read_ns, 0.0);
}

TEST(SensitivityEngine, PlatformCapacityAutoSizesToDataset) {
  // A dataset bigger than the default 4 GiB node still runs: the engine
  // scales node capacity, not timing.
  SensitivityConfig cfg = fast_config();
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 2'000;
  spec.request_count = 2'000;
  const auto trace = workload::Trace::generate(spec);
  const RunMeasurement m = engine.run_once(
      trace, Placement(trace.key_count(), NodeId::kFast));
  EXPECT_EQ(m.requests, trace.requests().size());
}

TEST(AverageRuns, FieldwiseMean) {
  RunMeasurement a;
  a.runtime_ns = 100.0;
  a.throughput_ops = 10.0;
  a.requests = 5;
  RunMeasurement b = a;
  b.runtime_ns = 200.0;
  b.throughput_ops = 20.0;
  const RunMeasurement avg = average_runs({a, b});
  EXPECT_DOUBLE_EQ(avg.runtime_ns, 150.0);
  EXPECT_DOUBLE_EQ(avg.throughput_ops, 15.0);
  EXPECT_EQ(avg.requests, 5u);
}

}  // namespace
}  // namespace mnemo::core
