// Equivalence oracle for the lane-fused replay executor (DESIGN.md §14):
// ReplayMode::kFused — K cells advanced per pass over the shared
// CompiledTrace by core::LaneBand, with util::simd batch kernels — must
// produce measurements bit-identical (field-for-field via RunMeasurement's
// defaulted operator==) to ReplayMode::kCompiled and ReplayMode::kLegacy,
// for every store architecture, at every lane width in {1, 2, 4, 8},
// every thread count in {1, 2, 8}, with and without fault injection.
// The golden fixtures (test_golden_replay, test_serve_golden) and the
// full sweep/degraded/serve suites run under the fused default too, so
// any drift from the pinned measurement bits fails there as well.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/campaign.hpp"
#include "core/lane_band.hpp"
#include "core/sensitivity_engine.hpp"
#include "util/arena.hpp"
#include "workload/compiled_trace.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kLaneWidths[] = {1, 2, 4, 8};
constexpr kvstore::StoreKind kStores[] = {kvstore::StoreKind::kVermilion,
                                          kvstore::StoreKind::kCachet,
                                          kvstore::StoreKind::kDynaStore};

workload::Trace small_trace() {
  workload::WorkloadSpec spec;
  spec.name = "lane_fusion";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.85;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 200;
  spec.request_count = 2'000;
  spec.seed = 0xc0dec;
  return workload::Trace::generate(spec);
}

std::vector<hybridmem::Placement> sweep_placements(
    const workload::Trace& trace) {
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  std::vector<hybridmem::Placement> placements;
  for (const double f : {0.0, 0.5, 1.0}) {
    placements.push_back(hybridmem::Placement::from_order(
        order, static_cast<std::size_t>(
                   f * static_cast<double>(trace.key_count()))));
  }
  return placements;
}

TEST(LaneFusion, GridBitIdenticalAcrossWidthsThreadsAndStores) {
  const workload::Trace trace = small_trace();
  const std::vector<hybridmem::Placement> placements =
      sweep_placements(trace);

  for (const kvstore::StoreKind store : kStores) {
    SensitivityConfig cfg;
    cfg.store = store;
    cfg.repeats = 2;
    const SensitivityEngine engine(cfg);

    // Both oracles once per store: the raw-Trace legacy path (PR 3) and
    // the per-cell compiled path (PR 8).
    CampaignRunner legacy(1);
    legacy.set_replay_mode(ReplayMode::kLegacy);
    const std::vector<RunMeasurement> reference =
        legacy.measure_grid(engine, trace, placements);
    CampaignRunner per_cell(1);
    per_cell.set_replay_mode(ReplayMode::kCompiled);
    const std::vector<RunMeasurement> compiled =
        per_cell.measure_grid(engine, trace, placements);
    ASSERT_EQ(reference.size(), compiled.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], compiled[i])
          << kvstore::to_string(store) << " placement " << i;
    }

    for (const std::size_t width : kLaneWidths) {
      for (const std::size_t threads : kThreadCounts) {
        CampaignRunner fused(threads);
        ASSERT_EQ(fused.replay_mode(), ReplayMode::kFused);
        fused.set_lane_width(width);
        ASSERT_EQ(fused.lane_width(), width);
        const std::vector<RunMeasurement> out =
            fused.measure_grid(engine, trace, placements);
        ASSERT_EQ(out.size(), reference.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
          EXPECT_EQ(reference[i], out[i])
              << kvstore::to_string(store) << " placement " << i << " width "
              << width << " threads " << threads;
        }
        EXPECT_EQ(fused.stats().lane_width, width);
      }
    }
  }
}

TEST(LaneFusion, CheckedCampaignWithFaultsMatchesPerCellAndLegacy) {
  const workload::Trace trace = small_trace();
  faultinject::FaultPlan plan;
  plan.poison_rate = 0.2;

  for (const kvstore::StoreKind store : kStores) {
    SensitivityConfig cfg;
    cfg.store = store;
    cfg.repeats = 2;
    cfg.faults = plan;
    const SensitivityEngine engine(cfg);

    const hybridmem::Placement all_fast(trace.key_count(),
                                        hybridmem::NodeId::kFast);
    const hybridmem::Placement all_slow(trace.key_count(),
                                        hybridmem::NodeId::kSlow);
    // Six cells so a band of width 4 mixes accepted lanes with shed ones
    // and the last band is partial.
    const std::vector<CampaignCell> cells = {{all_fast, 0}, {all_slow, 0},
                                             {all_fast, 1}, {all_slow, 1},
                                             {all_fast, 2}, {all_slow, 2}};

    CampaignRunner legacy(1);
    legacy.set_replay_mode(ReplayMode::kLegacy);
    const CampaignResult reference = legacy.run_checked(engine, trace, cells);
    CampaignRunner per_cell(1);
    per_cell.set_replay_mode(ReplayMode::kCompiled);
    const CampaignResult compiled = per_cell.run_checked(engine, trace, cells);
    ASSERT_EQ(reference.measurements, compiled.measurements)
        << kvstore::to_string(store);
    ASSERT_EQ(reference.failures, compiled.failures)
        << kvstore::to_string(store);

    for (const std::size_t width : kLaneWidths) {
      for (const std::size_t threads : kThreadCounts) {
        CampaignRunner fused(threads);
        fused.set_lane_width(width);
        const CampaignResult out = fused.run_checked(engine, trace, cells);
        ASSERT_EQ(out.measurements.size(), reference.measurements.size());
        for (std::size_t i = 0; i < out.measurements.size(); ++i) {
          EXPECT_EQ(reference.measurements[i], out.measurements[i])
              << kvstore::to_string(store) << " cell " << i << " width "
              << width << " threads " << threads;
        }
        EXPECT_EQ(reference.failures, out.failures)
            << kvstore::to_string(store) << " width " << width << " threads "
            << threads;
      }
    }
  }
}

TEST(LaneFusion, DirectBandMatchesTryRunOncePerLane) {
  const workload::Trace trace = small_trace();
  const workload::CompiledTrace compiled(trace);
  const std::vector<hybridmem::Placement> placements =
      sweep_placements(trace);
  SensitivityConfig cfg;
  const SensitivityEngine engine(cfg);

  // One band of three lanes over distinct placements/repeats, with and
  // without arenas, against the per-cell calls it fuses.
  const std::vector<LaneBand::Lane> lane_specs = {
      {&placements[0], 0, 0, nullptr},
      {&placements[1], 1, 0, nullptr},
      {&placements[2], 0, 1, nullptr},
  };
  std::vector<std::optional<util::Result<RunMeasurement>>> outs(
      lane_specs.size());
  LaneBand::replay(engine, compiled, lane_specs, outs);

  for (std::size_t l = 0; l < lane_specs.size(); ++l) {
    const util::Result<RunMeasurement> expected = engine.try_run_once(
        compiled, *lane_specs[l].placement, lane_specs[l].repeat,
        lane_specs[l].attempt);
    ASSERT_TRUE(outs[l].has_value()) << "lane " << l;
    ASSERT_EQ(outs[l]->ok(), expected.ok()) << "lane " << l;
    EXPECT_EQ(outs[l]->value(), expected.value()) << "lane " << l;
  }

  // Arena-backed lanes are an allocation strategy, never a behaviour
  // change — same bits again, across arena reuse cycles.
  util::Arena arenas[3];
  for (int cycle = 0; cycle < 2; ++cycle) {
    std::vector<LaneBand::Lane> arena_lanes = lane_specs;
    for (std::size_t l = 0; l < arena_lanes.size(); ++l) {
      arenas[l].reset();
      arena_lanes[l].arena = &arenas[l];
    }
    std::vector<std::optional<util::Result<RunMeasurement>>> arena_outs(
        arena_lanes.size());
    LaneBand::replay(engine, compiled, arena_lanes, arena_outs);
    for (std::size_t l = 0; l < arena_lanes.size(); ++l) {
      ASSERT_TRUE(arena_outs[l].has_value());
      EXPECT_EQ(arena_outs[l]->value(), outs[l]->value())
          << "lane " << l << " cycle " << cycle;
    }
  }
}

// Repeat-sibling skeleton sharing (DESIGN.md §14): lanes whose placements
// are identical and differ only in repeat replay the leader's recorded
// deterministic skeleton through their own noise streams. The shortcut
// must be invisible: every lane's measurement equals its own full
// try_run_once, for every store, including content-equal placements at
// different addresses, a sibling separated from its leader by an
// unrelated lane, and a degenerate duplicate of the leader itself.
TEST(LaneFusion, RepeatSiblingBandMatchesPerCellExactly) {
  const workload::Trace trace = small_trace();
  const workload::CompiledTrace compiled(trace);
  const std::vector<hybridmem::Placement> placements =
      sweep_placements(trace);
  // Same key → node map as placements[1], distinct object: sibling
  // detection must match on placement content, not addresses (campaign
  // cells copy their placement).
  const hybridmem::Placement half_copy = placements[1];

  for (const kvstore::StoreKind store : kStores) {
    SensitivityConfig cfg;
    cfg.store = store;
    const SensitivityEngine engine(cfg);

    const std::vector<LaneBand::Lane> lane_specs = {
        {&placements[1], 0, 0, nullptr},  // leader
        {&half_copy, 1, 0, nullptr},      // sibling via content equality
        {&placements[2], 0, 0, nullptr},  // unrelated lane between siblings
        {&placements[1], 2, 0, nullptr},  // sibling after the gap
        {&placements[1], 0, 0, nullptr},  // duplicate of the leader
    };
    std::vector<std::optional<util::Result<RunMeasurement>>> outs(
        lane_specs.size());
    LaneBand::replay(engine, compiled, lane_specs, outs);

    for (std::size_t l = 0; l < lane_specs.size(); ++l) {
      const util::Result<RunMeasurement> expected = engine.try_run_once(
          compiled, *lane_specs[l].placement, lane_specs[l].repeat,
          lane_specs[l].attempt);
      ASSERT_TRUE(outs[l].has_value())
          << kvstore::to_string(store) << " lane " << l;
      ASSERT_TRUE(outs[l]->ok()) << kvstore::to_string(store) << " lane " << l;
      EXPECT_EQ(outs[l]->value(), expected.value())
          << kvstore::to_string(store) << " lane " << l;
    }
    // The degenerate sibling shares the leader's seed, so the whole
    // measurement — noise stream included — must be bit-equal to it.
    EXPECT_EQ(outs[4]->value(), outs[0]->value()) << kvstore::to_string(store);
  }
}

TEST(LaneFusion, EmptyTraceIsTypedErrorOnEveryLane) {
  const workload::Trace trace("empty", 16, {},
                              std::vector<std::uint64_t>(16, 64));
  const workload::CompiledTrace compiled(trace);
  const hybridmem::Placement placement(trace.key_count(),
                                       hybridmem::NodeId::kFast);
  SensitivityConfig cfg;
  const SensitivityEngine engine(cfg);

  const std::vector<LaneBand::Lane> lanes = {{&placement, 0, 0, nullptr},
                                             {&placement, 1, 0, nullptr}};
  std::vector<std::optional<util::Result<RunMeasurement>>> outs(lanes.size());
  LaneBand::replay(engine, compiled, lanes, outs);
  for (std::size_t l = 0; l < outs.size(); ++l) {
    ASSERT_TRUE(outs[l].has_value());
    ASSERT_FALSE(outs[l]->ok());
    EXPECT_EQ(outs[l]->error().code, util::ErrorCode::kInvalidArgument);
  }
}

TEST(LaneFusion, StatsReportLaneWidthAndArenaPeak) {
  const workload::Trace trace = small_trace();
  const std::vector<hybridmem::Placement> placements =
      sweep_placements(trace);
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);

  reset_campaign_totals();
  CampaignRunner runner(2);
  (void)runner.measure_grid(engine, trace, placements);
  const CampaignStats& s = runner.stats();
  EXPECT_EQ(s.lane_width, LaneBand::kDefaultLanes);
  EXPECT_GT(s.arena_peak_bytes, 0u);

  const std::string table = s.render("campaign");
  EXPECT_NE(table.find("lane width"), std::string::npos);
  EXPECT_NE(table.find("arena peak (KiB)"), std::string::npos);

  const CampaignStats totals = campaign_totals();
  EXPECT_EQ(totals.lane_width, LaneBand::kDefaultLanes);
  EXPECT_EQ(totals.arena_peak_bytes, s.arena_peak_bytes);
  reset_campaign_totals();

  // The clamp: widths are held to [1, LaneBand::kMaxLanes].
  runner.set_lane_width(0);
  EXPECT_EQ(runner.lane_width(), 1u);
  runner.set_lane_width(1000);
  EXPECT_EQ(runner.lane_width(), LaneBand::kMaxLanes);
}

}  // namespace
}  // namespace mnemo::core
