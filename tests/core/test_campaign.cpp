// Determinism contract of the campaign runner (labelled `concurrency`,
// run these under -DMNEMO_TSAN=ON): fanning the {placement × repeat}
// measurement grid across ANY number of worker threads must merge to
// results bit-identical to the serial SensitivityEngine path — the
// property that lets every sweep in this repository parallelize freely
// without perturbing a single published number.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/estimate_engine.hpp"
#include "core/pattern_engine.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

workload::Trace zipfian_trace() {
  workload::WorkloadSpec spec;
  spec.name = "campaign_zipf";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 250;
  spec.request_count = 2'500;
  spec.seed = 0xc0ffee;
  return workload::Trace::generate(spec);
}

/// The pre-campaign serial path: run_once per repeat, averaged in repeat
/// order. This is the reference the runner must reproduce bit-for-bit.
RunMeasurement serial_measure(const SensitivityEngine& engine,
                              const workload::Trace& trace,
                              const hybridmem::Placement& placement) {
  std::vector<RunMeasurement> runs;
  for (int r = 0; r < engine.config().repeats; ++r) {
    runs.push_back(engine.run_once(trace, placement, r));
  }
  return average_runs(runs);
}

void expect_bit_identical(const RunMeasurement& a, const RunMeasurement& b) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.avg_read_ns, b.avg_read_ns);
  EXPECT_EQ(a.avg_write_ns, b.avg_write_ns);
  EXPECT_EQ(a.p95_ns, b.p95_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.llc_hit_rate, b.llc_hit_rate);
  EXPECT_EQ(a.read_vs_bytes.intercept, b.read_vs_bytes.intercept);
  EXPECT_EQ(a.read_vs_bytes.slope, b.read_vs_bytes.slope);
  EXPECT_EQ(a.write_vs_bytes.intercept, b.write_vs_bytes.intercept);
  EXPECT_EQ(a.write_vs_bytes.slope, b.write_vs_bytes.slope);
  ASSERT_EQ(a.latency_hist.count(), b.latency_hist.count());
  for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i) {
    ASSERT_EQ(a.latency_hist.bucket(i), b.latency_hist.bucket(i));
  }
}

/// Param = campaign worker threads; 0 resolves to hardware concurrency.
class CampaignDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CampaignDeterminism, BaselinesMatchSerialEngineBitForBit) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 3;
  cfg.threads = GetParam();
  const SensitivityEngine engine(cfg);

  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);
  const hybridmem::Placement all_slow(trace.key_count(),
                                      hybridmem::NodeId::kSlow);
  const RunMeasurement ref_fast = serial_measure(engine, trace, all_fast);
  const RunMeasurement ref_slow = serial_measure(engine, trace, all_slow);

  const PerfBaselines parallel = engine.baselines(trace);
  expect_bit_identical(parallel.fast, ref_fast);
  expect_bit_identical(parallel.slow, ref_slow);
}

TEST_P(CampaignDeterminism, GridMergesInCellOrderAtAnyThreadCount) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);

  // A mixed grid: several prefix placements of the touch order.
  const AccessPattern pattern = PatternEngine::analyze(trace);
  std::vector<hybridmem::Placement> placements;
  for (const std::uint64_t prefix :
       {std::uint64_t{0}, trace.key_count() / 4, trace.key_count() / 2,
        trace.key_count()}) {
    placements.push_back(hybridmem::Placement::from_order(
        pattern.touch_order, static_cast<std::size_t>(prefix)));
  }

  CampaignRunner runner(GetParam());
  const std::vector<RunMeasurement> merged =
      runner.measure_grid(engine, trace, placements);

  ASSERT_EQ(merged.size(), placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    expect_bit_identical(merged[i],
                         serial_measure(engine, trace, placements[i]));
  }
  EXPECT_EQ(runner.stats().cells, placements.size() * 2);
}

TEST_P(CampaignDeterminism, DerivedEstimateCurveIsBitIdentical) {
  const workload::Trace trace = zipfian_trace();
  const AccessPattern pattern = PatternEngine::analyze(trace);

  SensitivityConfig serial_cfg;
  serial_cfg.repeats = 2;
  serial_cfg.threads = 1;
  SensitivityConfig parallel_cfg = serial_cfg;
  parallel_cfg.threads = GetParam();

  const SensitivityEngine serial(serial_cfg);
  const SensitivityEngine parallel(parallel_cfg);
  const PerfBaselines serial_base = serial.baselines(trace);
  const PerfBaselines parallel_base = parallel.baselines(trace);

  const EstimateEngine estimator;
  const EstimateCurve a =
      estimator.estimate(pattern, pattern.touch_order, serial_base);
  const EstimateCurve b =
      estimator.estimate(pattern, pattern.touch_order, parallel_base);

  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    ASSERT_EQ(a.points[i].last_key, b.points[i].last_key);
    ASSERT_EQ(a.points[i].fast_keys, b.points[i].fast_keys);
    ASSERT_EQ(a.points[i].fast_bytes, b.points[i].fast_bytes);
    ASSERT_EQ(a.points[i].est_runtime_ns, b.points[i].est_runtime_ns);
    ASSERT_EQ(a.points[i].est_throughput_ops, b.points[i].est_throughput_ops);
    ASSERT_EQ(a.points[i].est_avg_latency_ns, b.points[i].est_avg_latency_ns);
    ASSERT_EQ(a.points[i].cost_factor, b.points[i].cost_factor);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CampaignDeterminism,
                         ::testing::Values<std::size_t>(1, 2, 4, 0),
                         [](const auto& info) {
                           return info.param == 0
                                      ? std::string("hardware")
                                      : std::to_string(info.param);
                         });

TEST(CampaignRunner, EmptyCampaignIsANoop) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  CampaignRunner runner(4);
  EXPECT_TRUE(runner.run(engine, trace, {}).empty());
  EXPECT_EQ(runner.stats().cells, 0u);
  EXPECT_EQ(runner.stats().cpu_s, 0.0);
}

TEST(CampaignRunner, CellsCarryTheirOwnSeedShift) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);

  CampaignRunner runner(2);
  const std::vector<RunMeasurement> out =
      runner.run(engine, trace, {{all_fast, 0}, {all_fast, 1}, {all_fast, 0}});
  ASSERT_EQ(out.size(), 3u);
  // Same cell twice -> same bits; different repeat -> different jitter.
  expect_bit_identical(out[0], out[2]);
  EXPECT_NE(out[0].runtime_ns, out[1].runtime_ns);
}

TEST(CampaignStats, AccountsForEveryCell) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 2;
  const SensitivityEngine engine(cfg);
  const hybridmem::Placement all_slow(trace.key_count(),
                                      hybridmem::NodeId::kSlow);

  CampaignRunner runner(2);
  (void)runner.measure_grid(engine, trace, {all_slow, all_slow, all_slow});
  const CampaignStats& s = runner.stats();
  EXPECT_EQ(s.cells, 6u);
  EXPECT_EQ(s.threads, 2u);
  EXPECT_GT(s.wall_s, 0.0);
  EXPECT_GT(s.cpu_s, 0.0);
  EXPECT_GT(s.cell_p50_s, 0.0);
  EXPECT_LE(s.cell_p50_s, s.cell_p95_s);
  EXPECT_GT(s.speedup(), 0.0);
  EXPECT_GT(s.occupancy(), 0.0);
  const std::string table = s.render("campaign");
  EXPECT_NE(table.find("cells run"), std::string::npos);
  EXPECT_NE(table.find("speedup vs serial"), std::string::npos);
}

TEST(CampaignStats, TotalsAggregateAcrossCampaigns) {
  const workload::Trace trace = zipfian_trace();
  SensitivityConfig cfg;
  cfg.repeats = 1;
  const SensitivityEngine engine(cfg);
  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);

  reset_campaign_totals();
  CampaignRunner runner(1);
  (void)runner.run(engine, trace, {{all_fast, 0}});
  (void)runner.run(engine, trace, {{all_fast, 0}, {all_fast, 1}});
  const CampaignStats totals = campaign_totals();
  EXPECT_EQ(totals.cells, 3u);
  EXPECT_GT(totals.wall_s, 0.0);
  EXPECT_GT(totals.cpu_s, 0.0);
  reset_campaign_totals();
  EXPECT_EQ(campaign_totals().cells, 0u);
}

TEST(CampaignStats, MergeAddsTimesAndCells) {
  CampaignStats a;
  a.cells = 4;
  a.threads = 2;
  a.wall_s = 1.0;
  a.cpu_s = 2.0;
  a.cell_p50_s = 0.5;
  a.cell_p95_s = 0.9;
  CampaignStats b;
  b.cells = 4;
  b.threads = 4;
  b.wall_s = 0.5;
  b.cpu_s = 2.0;
  b.cell_p50_s = 0.3;
  b.cell_p95_s = 0.7;
  a.merge(b);
  EXPECT_EQ(a.cells, 8u);
  EXPECT_EQ(a.threads, 4u);
  EXPECT_DOUBLE_EQ(a.wall_s, 1.5);
  EXPECT_DOUBLE_EQ(a.cpu_s, 4.0);
  EXPECT_NEAR(a.cell_p50_s, 0.4, 1e-12);
  EXPECT_NEAR(a.speedup(), 4.0 / 1.5, 1e-12);
}

}  // namespace
}  // namespace mnemo::core
