// Equivalence oracle for the compile-once campaign path (DESIGN.md §12):
// ReplayMode::kCompiled — shared CompiledTrace, hash/digest passthrough,
// arena-backed cells — must produce measurements bit-identical
// (field-for-field via RunMeasurement's defaulted operator==) to
// ReplayMode::kLegacy, for every store architecture, with and without
// faults, at every thread count in {1, 2, 8}.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "core/sensitivity_engine.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "workload/compiled_trace.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr kvstore::StoreKind kStores[] = {kvstore::StoreKind::kVermilion,
                                          kvstore::StoreKind::kCachet,
                                          kvstore::StoreKind::kDynaStore};

workload::Trace small_trace() {
  workload::WorkloadSpec spec;
  spec.name = "compiled_replay";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.85;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 200;
  spec.request_count = 2'000;
  spec.seed = 0xc0dec;
  return workload::Trace::generate(spec);
}

std::vector<hybridmem::Placement> sweep_placements(
    const workload::Trace& trace) {
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  std::vector<hybridmem::Placement> placements;
  for (const double f : {0.0, 0.5, 1.0}) {
    placements.push_back(hybridmem::Placement::from_order(
        order, static_cast<std::size_t>(
                   f * static_cast<double>(trace.key_count()))));
  }
  return placements;
}

TEST(CompiledTrace, HoistsExactlyWhatTheStoresWouldCompute) {
  const workload::Trace trace = small_trace();
  const workload::CompiledTrace compiled(trace);

  ASSERT_EQ(compiled.key_count(), trace.key_count());
  ASSERT_EQ(compiled.request_count(), trace.requests().size());
  EXPECT_EQ(compiled.dataset_bytes(), trace.dataset_bytes());

  for (std::uint64_t key = 0; key < trace.key_count(); ++key) {
    ASSERT_EQ(compiled.key_hash(key), util::mix64(key));
    ASSERT_EQ(compiled.key_digest(key),
              util::record_digest(key, trace.size_of(key)));
  }

  std::size_t reads = 0;
  for (std::size_t i = 0; i < compiled.request_count(); ++i) {
    const workload::Request& req = trace.requests()[i];
    ASSERT_EQ(compiled.ops()[i], req.op);
    ASSERT_EQ(compiled.keys()[i], req.key);
    if (req.op == workload::OpType::kRead) ++reads;
  }
  EXPECT_EQ(compiled.read_count(), reads);
  EXPECT_EQ(compiled.write_count(), compiled.request_count() - reads);
  EXPECT_EQ(compiled.read_bytes().size(), compiled.read_count());
  EXPECT_EQ(compiled.write_bytes().size(), compiled.write_count());
}

TEST(CompiledReplay, GridBitIdenticalToLegacyAcrossStoresAndThreads) {
  const workload::Trace trace = small_trace();
  const std::vector<hybridmem::Placement> placements =
      sweep_placements(trace);

  for (const kvstore::StoreKind store : kStores) {
    SensitivityConfig cfg;
    cfg.store = store;
    cfg.repeats = 2;
    const SensitivityEngine engine(cfg);

    for (const std::size_t threads : kThreadCounts) {
      CampaignRunner legacy(threads);
      legacy.set_replay_mode(ReplayMode::kLegacy);
      CampaignRunner fast(threads);
      // The default is now the lane-fused executor; this suite pins the
      // per-cell compiled arm against legacy (the fused ≡ per-cell leg
      // lives in test_lane_fusion.cpp).
      ASSERT_EQ(fast.replay_mode(), ReplayMode::kFused);
      fast.set_replay_mode(ReplayMode::kCompiled);

      const std::vector<RunMeasurement> before =
          legacy.measure_grid(engine, trace, placements);
      const std::vector<RunMeasurement> after =
          fast.measure_grid(engine, trace, placements);
      ASSERT_EQ(before.size(), after.size());
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i], after[i])
            << kvstore::to_string(store) << " placement " << i << " threads "
            << threads;
      }
    }
  }
}

TEST(CompiledReplay, CheckedCampaignWithFaultsMatchesLegacy) {
  const workload::Trace trace = small_trace();
  faultinject::FaultPlan plan;
  plan.poison_rate = 0.2;

  for (const kvstore::StoreKind store : kStores) {
    SensitivityConfig cfg;
    cfg.store = store;
    cfg.repeats = 2;
    cfg.faults = plan;
    const SensitivityEngine engine(cfg);

    const hybridmem::Placement all_fast(trace.key_count(),
                                        hybridmem::NodeId::kFast);
    const hybridmem::Placement all_slow(trace.key_count(),
                                        hybridmem::NodeId::kSlow);
    const std::vector<CampaignCell> cells = {
        {all_fast, 0}, {all_slow, 0}, {all_fast, 1}, {all_slow, 1}};

    for (const std::size_t threads : kThreadCounts) {
      CampaignRunner legacy(threads);
      legacy.set_replay_mode(ReplayMode::kLegacy);
      CampaignRunner fast(threads);

      const CampaignResult before = legacy.run_checked(engine, trace, cells);
      const CampaignResult after = fast.run_checked(engine, trace, cells);
      ASSERT_EQ(before.measurements.size(), after.measurements.size());
      for (std::size_t i = 0; i < before.measurements.size(); ++i) {
        EXPECT_EQ(before.measurements[i], after.measurements[i])
            << kvstore::to_string(store) << " cell " << i << " threads "
            << threads;
      }
      EXPECT_EQ(before.failures, after.failures)
          << kvstore::to_string(store) << " threads " << threads;
    }
  }
}

TEST(CompiledReplay, DirectRunOnceWithExternalArenaMatchesHeap) {
  const workload::Trace trace = small_trace();
  const workload::CompiledTrace compiled(trace);
  const hybridmem::Placement half(
      trace.key_count(), hybridmem::NodeId::kFast);
  SensitivityConfig cfg;
  const SensitivityEngine engine(cfg);

  const RunMeasurement heap_legacy = engine.run_once(trace, half, 1);
  const RunMeasurement heap_compiled = engine.run_once(compiled, half, 1);
  EXPECT_EQ(heap_legacy, heap_compiled);

  util::Arena arena;
  for (int cycle = 0; cycle < 3; ++cycle) {
    arena.reset();
    EXPECT_EQ(engine.run_once(compiled, half, 1, &arena), heap_legacy)
        << "arena cycle " << cycle;
  }
}

TEST(CompiledReplay, ZeroRequestTraceIsTypedErrorOnBothPaths) {
  // WorkloadSpec forbids generating an empty trace, but a loaded/derived
  // trace (CSV import, aggressive downsample) can legally be requestless.
  const workload::Trace trace("empty", 16, {},
                              std::vector<std::uint64_t>(16, 64));
  const workload::CompiledTrace compiled(trace);
  const hybridmem::Placement placement(trace.key_count(),
                                       hybridmem::NodeId::kFast);
  SensitivityConfig cfg;
  const SensitivityEngine engine(cfg);

  const util::Result<RunMeasurement> legacy =
      engine.try_run_once(trace, placement);
  ASSERT_FALSE(legacy.ok());
  EXPECT_EQ(legacy.error().code, util::ErrorCode::kInvalidArgument);

  util::Arena arena;
  const util::Result<RunMeasurement> fast =
      engine.try_run_once(compiled, placement, 0, 0, &arena);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.error().code, util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(legacy.error().message, fast.error().message);
}

}  // namespace
}  // namespace mnemo::core
