#include "core/slo_advisor.hpp"

#include <gtest/gtest.h>

namespace mnemo::core {
namespace {

/// A hand-built curve: throughput rises from 500 to 1000 ops/s while cost
/// rises from 0.2 to 1.0, both linearly over 11 points.
struct Fixture {
  EstimateCurve curve;
  PerfBaselines baselines;

  Fixture() {
    baselines.fast.throughput_ops = 1000.0;
    baselines.slow.throughput_ops = 500.0;
    for (int i = 0; i <= 10; ++i) {
      EstimatePoint p;
      p.fast_keys = static_cast<std::size_t>(i);
      p.fast_bytes = static_cast<std::uint64_t>(i) * 100;
      p.est_throughput_ops = 500.0 + 50.0 * i;
      p.cost_factor = 0.2 + 0.08 * i;
      curve.points.push_back(p);
    }
  }
};

TEST(SloAdvisor, PicksCheapestPointMeetingSlo) {
  const Fixture f;
  const SloAdvisor advisor(0.10);  // floor: 900 ops/s
  const auto choice = advisor.choose(f.curve, f.baselines);
  ASSERT_TRUE(choice.has_value());
  // First point with >= 900 ops/s is i=8 (900 exactly).
  EXPECT_EQ(choice->point.fast_keys, 8u);
  EXPECT_NEAR(choice->cost_factor, 0.2 + 0.08 * 8, 1e-12);
  EXPECT_NEAR(choice->slowdown_vs_fast, 0.10, 1e-12);
  EXPECT_NEAR(choice->savings_vs_fast, 1.0 - choice->cost_factor, 1e-12);
}

TEST(SloAdvisor, ZeroToleranceRequiresFullThroughput) {
  const Fixture f;
  const SloAdvisor advisor(0.0);
  const auto choice = advisor.choose(f.curve, f.baselines);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->point.fast_keys, 10u);
  EXPECT_DOUBLE_EQ(choice->cost_factor, 1.0);
}

TEST(SloAdvisor, LooseToleranceReachesTheFloor) {
  const Fixture f;
  const SloAdvisor advisor(0.55);  // floor 450 < slow-only 500
  const auto choice = advisor.choose(f.curve, f.baselines);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->point.fast_keys, 0u);
  EXPECT_DOUBLE_EQ(choice->cost_factor, 0.2);
  EXPECT_NEAR(choice->savings_vs_fast, 0.8, 1e-12);
}

TEST(SloAdvisor, UnreachableSloReturnsNullopt) {
  Fixture f;
  // Demand more than any point offers.
  f.baselines.fast.throughput_ops = 5000.0;
  const SloAdvisor advisor(0.01);
  EXPECT_FALSE(advisor.choose(f.curve, f.baselines).has_value());
}

TEST(SloAdvisor, NonMonotoneCurveStillFindsGlobalCheapest)  {
  // A curve where a later (more expensive) point dips below the SLO but an
  // earlier cheap point satisfies it: the advisor scans all points.
  Fixture f;
  f.curve.points[9].est_throughput_ops = 400.0;  // dip
  const SloAdvisor advisor(0.10);
  const auto choice = advisor.choose(f.curve, f.baselines);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->point.fast_keys, 8u);
}

TEST(SloAdvisor, DefaultIsPaperTenPercent) {
  const SloAdvisor advisor;
  EXPECT_DOUBLE_EQ(advisor.permissible_slowdown(), 0.10);
}

TEST(SloAdvisor, UnreachableSloIsAnExplicitNoFeasibleSplit) {
  Fixture f;
  f.baselines.fast.throughput_ops = 5000.0;  // no point can satisfy this
  const SloAdvisor advisor(0.01);
  const SloResult result = advisor.advise(f.curve, f.baselines);
  EXPECT_EQ(result.outcome, SloOutcome::kNoFeasibleSplit);
  EXPECT_FALSE(result.feasible());
  EXPECT_FALSE(result.choice.has_value());
  EXPECT_EQ(to_string(result.outcome), "no_feasible_split");
}

TEST(SloAdvisor, SloTighterThanFastMemOnlyIsNoFeasibleSplit) {
  // A negative permissible slowdown demands throughput above the measured
  // FastMem-only baseline — tighter than the best the platform can do.
  const Fixture f;
  const SloAdvisor advisor(-0.05);  // floor: 1050 > fast baseline 1000
  const SloResult result = advisor.advise(f.curve, f.baselines);
  EXPECT_EQ(result.outcome, SloOutcome::kNoFeasibleSplit);
  EXPECT_FALSE(result.choice.has_value());
}

TEST(SloAdvisor, SloMetAtZeroFastMemPicksTheEmptySplit) {
  // When even the SlowMem-only configuration satisfies the SLO, the
  // verdict is the 0-key split: all data in SlowMem, maximum savings.
  const Fixture f;
  const SloAdvisor advisor(0.55);  // floor 450 <= slow-only 500
  const SloResult result = advisor.advise(f.curve, f.baselines);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.choice->point.fast_keys, 0u);
  EXPECT_EQ(result.choice->point.fast_bytes, 0u);
  EXPECT_DOUBLE_EQ(result.choice->cost_factor, 0.2);
}

TEST(SloAdvisor, CostTiesBreakTowardTheSmallerFastMemFootprint) {
  // Two SLO-satisfying points with identical cost but different FastMem
  // footprints: the advisor must pick the cheaper-to-provision one.
  Fixture f;
  f.curve.points[9].cost_factor = f.curve.points[8].cost_factor;
  const SloAdvisor advisor(0.10);  // floor 900: points 8, 9, 10 qualify
  const SloResult result = advisor.advise(f.curve, f.baselines);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.choice->point.fast_keys, 8u);
  EXPECT_LT(result.choice->point.fast_bytes,
            f.curve.points[9].fast_bytes);
}

TEST(SloAdvisor, ChooseMatchesAdvise) {
  const Fixture f;
  const SloAdvisor advisor(0.10);
  const auto choice = advisor.choose(f.curve, f.baselines);
  const SloResult result = advisor.advise(f.curve, f.baselines);
  ASSERT_TRUE(choice.has_value());
  ASSERT_TRUE(result.choice.has_value());
  EXPECT_TRUE(*choice == *result.choice);
}

}  // namespace
}  // namespace mnemo::core
