#include "core/artifact_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/artifacts.hpp"

namespace mnemo::core {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kKey = "0123456789abcdef0123456789abcdef";

struct StoreFixture : ::testing::Test {
  fs::path dir;
  void SetUp() override {
    dir = fs::path(testing::TempDir()) /
          (std::string("mnemo_store_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  static ReportArtifact sample() {
    ReportArtifact a;
    a.text = "workload: trending\n";
    a.csv = "key_id,est_throughput_ops,cost_reduction_factor\n";
    return a;
  }

  /// The store's file for the sample artifact's (stage, key) address.
  std::string sample_path(const ArtifactStore& store) const {
    return store.path_for(ReportArtifact::kStage, kKey);
  }

  static CacheMiss last_miss(const ArtifactStore& store) {
    EXPECT_FALSE(store.events().empty());
    return store.events().back().miss;
  }
};

TEST_F(StoreFixture, SaveThenLoadRoundTrips) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  const auto back = store.load<ReportArtifact>(kKey);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == sample());
  EXPECT_TRUE(store.events().back().hit);
  EXPECT_EQ(store.events().back().miss, CacheMiss::kNone);
}

TEST_F(StoreFixture, DisabledStoreAlwaysMissesAndDropsSaves) {
  ArtifactStore store;  // no directory
  EXPECT_FALSE(store.enabled());
  EXPECT_TRUE(store.save(kKey, sample()).ok());  // dropped, not an error
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kDisabled);
}

TEST_F(StoreFixture, AbsentKeyIsAColdMiss) {
  ArtifactStore store(dir.string());
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kAbsent);
}

TEST_F(StoreFixture, SaveLeavesNoTempFiles) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename() == "journal.mnj") continue;  // write journal
    EXPECT_EQ(e.path().extension().string(), ".mna") << e.path();
  }
}

TEST_F(StoreFixture, PathEncodesStageAndKey) {
  const ArtifactStore store(dir.string());
  const std::string path = sample_path(store);
  EXPECT_NE(path.find("report-"), std::string::npos);
  EXPECT_NE(path.find(kKey), std::string::npos);
  EXPECT_NE(path.find(".mna"), std::string::npos);
}

TEST_F(StoreFixture, TruncatedFileIsAMissNeverAnError) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  const std::string path = sample_path(store);
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);

  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kTruncated);
  EXPECT_FALSE(store.events().back().detail.empty());
}

TEST_F(StoreFixture, BadMagicIsAMiss) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  std::ofstream(sample_path(store), std::ios::binary) << "not an artifact";
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kBadMagic);
}

TEST_F(StoreFixture, ForeignSchemaIsAMiss) {
  ArtifactStore store(dir.string());
  // Write a *measure* artifact into the file the *report* key addresses —
  // e.g. a renamed file or a colliding key from an old layout.
  util::BinWriter w;
  MeasureArtifact{}.serialize(w);
  ASSERT_TRUE(store
                  .save_payload(ReportArtifact::kStage,
                                MeasureArtifact::kSchema,
                                MeasureArtifact::kVersion, kKey, w.buffer())
                  .ok());
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kSchemaMismatch);
  EXPECT_NE(store.events().back().detail.find("mnemo.artifact.measure"),
            std::string::npos);
}

TEST_F(StoreFixture, StaleVersionIsAMiss) {
  ArtifactStore store(dir.string());
  util::BinWriter w;
  sample().serialize(w);
  ASSERT_TRUE(store
                  .save_payload(ReportArtifact::kStage, ReportArtifact::kSchema,
                                ReportArtifact::kVersion + 1, kKey, w.buffer())
                  .ok());
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kVersionMismatch);
}

TEST_F(StoreFixture, FlippedPayloadByteFailsTheChecksum) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  const std::string path = sample_path(store);
  std::string bytes;
  ASSERT_TRUE(util::read_file(path, &bytes));
  bytes[bytes.size() - 20] ^= 0x01;  // inside the payload region
  std::ofstream(path, std::ios::binary) << bytes;

  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kChecksumMismatch);
}

TEST_F(StoreFixture, ChecksummedButUndecodablePayloadIsCorrupt) {
  ArtifactStore store(dir.string());
  // A validly framed file whose payload is not a ReportArtifact stream.
  ASSERT_TRUE(store
                  .save_payload(ReportArtifact::kStage, ReportArtifact::kSchema,
                                ReportArtifact::kVersion, kKey, "\x01")
                  .ok());
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  EXPECT_EQ(last_miss(store), CacheMiss::kCorrupt);
}

TEST_F(StoreFixture, RejectedFileStaysOnDiskAndRecomputeOverwritesIt) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  fs::resize_file(sample_path(store), 3);
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());
  // The recompute path writes the fresh artifact over the bad file.
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  EXPECT_TRUE(store.load<ReportArtifact>(kKey).has_value());
}

TEST_F(StoreFixture, EventsLedgerRecordsEveryDecisionInOrder) {
  ArtifactStore store(dir.string());
  EXPECT_FALSE(store.load<ReportArtifact>(kKey).has_value());  // cold
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  EXPECT_TRUE(store.load<ReportArtifact>(kKey).has_value());  // warm

  ASSERT_EQ(store.events().size(), 2u);
  EXPECT_EQ(store.events()[0].miss, CacheMiss::kAbsent);
  EXPECT_TRUE(store.events()[1].hit);
  EXPECT_EQ(store.events()[0].stage, "report");
  EXPECT_EQ(store.events()[0].key, kKey);

  store.clear_events();
  EXPECT_TRUE(store.events().empty());
}

TEST_F(StoreFixture, IdenticalIncumbentSkipsTheRewrite) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  const auto mtime = fs::last_write_time(sample_path(store));
  // Second writer of the same content-addressed bytes: a no-op, not a
  // rewrite (no temp-file churn, no mtime bump).
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  EXPECT_EQ(fs::last_write_time(sample_path(store)), mtime);
}

TEST_F(StoreFixture, ConcurrentSameKeyWritersNeverProduceATornRead) {
  // Two sessions sharing one cache dir race to save the same key. Every
  // interleaving must end with one valid, loadable file — last writer
  // wins, and a concurrent reader sees either a valid frame or a miss,
  // never a torn artifact decoded as something else.
  ArtifactStore writer_a(dir.string());
  ArtifactStore writer_b(dir.string());
  ArtifactStore reader(dir.string());

  constexpr int kRounds = 200;
  std::thread ta([&] {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(writer_a.save(kKey, sample()).ok());
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(writer_b.save(kKey, sample()).ok());
    }
  });
  std::thread tr([&] {
    for (int i = 0; i < kRounds; ++i) {
      const auto got = reader.load<ReportArtifact>(kKey);
      if (got.has_value()) {
        EXPECT_TRUE(*got == sample());
      }
    }
  });
  ta.join();
  tb.join();
  tr.join();

  const auto got = reader.load<ReportArtifact>(kKey);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == sample());
  // Atomic rename cleanup: no temp files survive the race.
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename() == "journal.mnj") continue;  // write journal
    EXPECT_EQ(e.path().extension().string(), ".mna") << e.path();
  }
}

TEST_F(StoreFixture, EventsLedgerIsThreadSafe) {
  ArtifactStore store(dir.string());
  ASSERT_TRUE(store.save(kKey, sample()).ok());
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(store.load<ReportArtifact>(kKey).has_value());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.events().size(), 400u);
}

TEST_F(StoreFixture, MissReasonsHaveNames) {
  EXPECT_EQ(to_string(CacheMiss::kAbsent), "absent");
  EXPECT_EQ(to_string(CacheMiss::kTruncated), "truncated");
  EXPECT_EQ(to_string(CacheMiss::kChecksumMismatch), "checksum mismatch");
}

}  // namespace
}  // namespace mnemo::core
