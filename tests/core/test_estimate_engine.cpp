#include "core/estimate_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mnemo::core {
namespace {

/// Synthetic baselines consistent with a pattern: runtime is exactly
/// requests x avg times, so the model's bounds are exact.
struct Fixture {
  AccessPattern pattern;
  PerfBaselines baselines;
  std::vector<std::uint64_t> order;

  explicit Fixture(std::size_t keys = 10, std::uint64_t reads_per_key = 100) {
    pattern.reads.assign(keys, reads_per_key);
    pattern.writes.assign(keys, 0);
    pattern.sizes.assign(keys, 1000);
    pattern.touch_order.resize(keys);
    std::iota(pattern.touch_order.begin(), pattern.touch_order.end(), 0);
    order = pattern.touch_order;

    const auto requests = static_cast<double>(keys * reads_per_key);
    baselines.fast.requests = keys * reads_per_key;
    baselines.fast.reads = keys * reads_per_key;
    baselines.fast.avg_read_ns = 1000.0;
    baselines.fast.runtime_ns = requests * 1000.0;
    baselines.fast.throughput_ops = requests / (baselines.fast.runtime_ns / 1e9);
    baselines.slow = baselines.fast;
    baselines.slow.avg_read_ns = 3000.0;
    baselines.slow.runtime_ns = requests * 3000.0;
    baselines.slow.throughput_ops = requests / (baselines.slow.runtime_ns / 1e9);
  }
};

TEST(EstimateEngine, CurveHasOneRowPerPrefix) {
  const Fixture f;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  EXPECT_EQ(curve.points.size(), f.pattern.key_count() + 1);
}

TEST(EstimateEngine, EndpointsMatchBaselines) {
  const Fixture f;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  EXPECT_NEAR(curve.points.front().est_runtime_ns,
              f.baselines.slow.runtime_ns, 1e-6);
  EXPECT_NEAR(curve.points.back().est_runtime_ns,
              f.baselines.fast.runtime_ns, 1e-6);
  EXPECT_DOUBLE_EQ(curve.points.front().cost_factor, 0.2);
  EXPECT_DOUBLE_EQ(curve.points.back().cost_factor, 1.0);
}

TEST(EstimateEngine, UniformPatternGivesLinearRuntime) {
  const Fixture f;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  // Equal per-key refunds: runtime decreases by the same step per row.
  const double step = curve.points[0].est_runtime_ns -
                      curve.points[1].est_runtime_ns;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_NEAR(curve.points[i - 1].est_runtime_ns -
                    curve.points[i].est_runtime_ns,
                step, 1e-6);
  }
}

TEST(EstimateEngine, ThroughputMonotoneForReadOnlyOrdering) {
  Fixture f;
  // Skewed reads, ordered hottest-first: throughput should be concave
  // nondecreasing.
  for (std::size_t k = 0; k < f.pattern.reads.size(); ++k) {
    f.pattern.reads[k] = 1000 / (k + 1);
  }
  const auto requests = std::accumulate(f.pattern.reads.begin(),
                                        f.pattern.reads.end(), 0ULL);
  f.baselines.fast.requests = requests;
  f.baselines.fast.runtime_ns = static_cast<double>(requests) * 1000.0;
  f.baselines.slow.requests = requests;
  f.baselines.slow.runtime_ns = static_cast<double>(requests) * 3000.0;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].est_throughput_ops,
              curve.points[i - 1].est_throughput_ops - 1e-9);
  }
}

TEST(EstimateEngine, WriteDeltaAppliedSeparately) {
  Fixture f(2, 10);
  f.pattern.writes = {10, 0};  // key0 also gets writes
  f.baselines.slow.avg_write_ns = 2000.0;
  f.baselines.fast.avg_write_ns = 1500.0;
  const auto requests = 20.0 + 10.0;
  f.baselines.slow.requests = 30;
  f.baselines.fast.requests = 30;
  f.baselines.slow.runtime_ns = 20.0 * 3000.0 + 10.0 * 2000.0;
  f.baselines.fast.runtime_ns = 20.0 * 1000.0 + 10.0 * 1500.0;
  (void)requests;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  // Moving key0 refunds 10 reads * 2000 + 10 writes * 500.
  EXPECT_NEAR(curve.points[0].est_runtime_ns - curve.points[1].est_runtime_ns,
              10.0 * 2000.0 + 10.0 * 500.0, 1e-6);
  // Moving key1 refunds only its 10 reads.
  EXPECT_NEAR(curve.points[1].est_runtime_ns - curve.points[2].est_runtime_ns,
              10.0 * 2000.0, 1e-6);
}

TEST(EstimateEngine, CostFactorsFollowBytesNotKeyCounts) {
  Fixture f(3, 10);
  f.pattern.sizes = {8000, 1000, 1000};
  f.baselines.slow.requests = 30;
  f.baselines.fast.requests = 30;
  f.baselines.slow.runtime_ns = 30.0 * 3000.0;
  f.baselines.fast.runtime_ns = 30.0 * 1000.0;
  const EstimateEngine engine(CostModel(0.2));
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  // After key0 (8000 of 10000 bytes): R = (0.8 + 0.2*0.2) = 0.84.
  EXPECT_NEAR(curve.points[1].cost_factor, 0.84, 1e-12);
  EXPECT_EQ(curve.points[1].fast_bytes, 8000u);
}

TEST(EstimateCurve, AtBudgetSelectsLargestAffordablePrefix) {
  const Fixture f;
  const EstimateEngine engine;
  const auto curve = engine.estimate(f.pattern, f.order, f.baselines);
  EXPECT_EQ(curve.at_budget(0).fast_keys, 0u);
  EXPECT_EQ(curve.at_budget(999).fast_keys, 0u);
  EXPECT_EQ(curve.at_budget(1000).fast_keys, 1u);
  EXPECT_EQ(curve.at_budget(5500).fast_keys, 5u);
  EXPECT_EQ(curve.at_budget(1 << 30).fast_keys, 10u);
  EXPECT_GT(curve.throughput_at(1 << 30), curve.throughput_at(0));
}

TEST(EstimateEngine, SizeAwareFallsBackWithoutSizeLines) {
  // Fixtures leave the service-vs-bytes lines zeroed; size-aware must
  // degrade to the uniform model rather than produce a flat curve.
  const Fixture f;
  const EstimateEngine uniform(CostModel{}, EstimateModel::kUniformDelta);
  const EstimateEngine aware(CostModel{}, EstimateModel::kSizeAware);
  const auto cu = uniform.estimate(f.pattern, f.order, f.baselines);
  const auto ca = aware.estimate(f.pattern, f.order, f.baselines);
  ASSERT_EQ(cu.points.size(), ca.points.size());
  for (std::size_t i = 0; i < cu.points.size(); ++i) {
    EXPECT_NEAR(cu.points[i].est_runtime_ns, ca.points[i].est_runtime_ns,
                1e-6);
  }
}

TEST(EstimateEngine, SizeAwareRefundsScaleWithRecordSize) {
  Fixture f(2, 10);
  f.pattern.sizes = {1000, 9000};
  // Service = 100 + 0.1*bytes on SlowMem, 100 + 0.01*bytes on FastMem.
  f.baselines.slow.read_vs_bytes = {100.0, 0.1};
  f.baselines.fast.read_vs_bytes = {100.0, 0.01};
  // Runtimes consistent with those lines over 10 reads per key.
  f.baselines.slow.runtime_ns =
      10.0 * (100.0 + 0.1 * 1000.0) + 10.0 * (100.0 + 0.1 * 9000.0);
  f.baselines.fast.runtime_ns =
      10.0 * (100.0 + 0.01 * 1000.0) + 10.0 * (100.0 + 0.01 * 9000.0);
  f.baselines.slow.requests = 20;
  f.baselines.fast.requests = 20;
  const EstimateEngine aware(CostModel{}, EstimateModel::kSizeAware);
  const auto curve = aware.estimate(f.pattern, f.order, f.baselines);
  // Moving the 1000-byte key refunds 10 * 0.09 * 1000 = 900 ns; the
  // 9000-byte key refunds 8100 ns.
  EXPECT_NEAR(curve.points[0].est_runtime_ns - curve.points[1].est_runtime_ns,
              900.0, 1e-6);
  EXPECT_NEAR(curve.points[1].est_runtime_ns - curve.points[2].est_runtime_ns,
              8100.0, 1e-6);
  // Endpoints still pinned to the measured baselines.
  EXPECT_NEAR(curve.points.back().est_runtime_ns,
              f.baselines.fast.runtime_ns, 1e-6);
}

TEST(EstimateEngine, ModelNames) {
  EXPECT_EQ(to_string(EstimateModel::kUniformDelta), "uniform_delta");
  EXPECT_EQ(to_string(EstimateModel::kSizeAware), "size_aware");
}

TEST(EstimateError, SignConvention) {
  // Paper: (r - e)/r * 100 — positive when the estimate undershoots.
  EXPECT_DOUBLE_EQ(estimate_error_pct(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(estimate_error_pct(100.0, 110.0), -10.0);
  EXPECT_DOUBLE_EQ(estimate_error_pct(50.0, 50.0), 0.0);
}

}  // namespace
}  // namespace mnemo::core
