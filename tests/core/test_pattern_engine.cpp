#include "core/pattern_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace tiny_trace() {
  workload::WorkloadSpec spec = workload::paper_workload("timeline");
  spec.key_count = 300;
  spec.request_count = 5'000;
  spec.record_size = workload::RecordSizeType::kPhotoCaption;
  return workload::Trace::generate(spec);
}

TEST(PatternEngine, CountsMatchTrace) {
  const auto trace = tiny_trace();
  const AccessPattern p = PatternEngine::analyze(trace);
  EXPECT_EQ(p.key_count(), trace.key_count());
  EXPECT_EQ(p.reads, trace.read_counts());
  EXPECT_EQ(p.writes, trace.write_counts());
  EXPECT_EQ(p.sizes, trace.key_sizes());
  EXPECT_EQ(p.total_bytes(), trace.dataset_bytes());
}

TEST(PatternEngine, AccessesSumsReadsAndWrites) {
  workload::WorkloadSpec spec = workload::paper_workload("edit_thumbnail");
  spec.key_count = 100;
  spec.request_count = 2'000;
  spec.record_size = workload::RecordSizeType::kPhotoCaption;
  const auto trace = workload::Trace::generate(spec);
  const AccessPattern p = PatternEngine::analyze(trace);
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < p.key_count(); ++k) total += p.accesses(k);
  EXPECT_EQ(total, trace.requests().size());
}

TEST(PatternEngine, TouchOrderIsAPermutation) {
  const auto trace = tiny_trace();
  const AccessPattern p = PatternEngine::analyze(trace);
  EXPECT_EQ(p.touch_order.size(), trace.key_count());
  std::set<std::uint64_t> unique(p.touch_order.begin(), p.touch_order.end());
  EXPECT_EQ(unique.size(), trace.key_count());
}

TEST(PatternEngine, TouchOrderMatchesFirstAppearance) {
  const auto trace = tiny_trace();
  const AccessPattern p = PatternEngine::analyze(trace);
  // Recompute first-touch positions and verify order agrees for keys
  // actually touched.
  std::vector<std::int64_t> first(trace.key_count(), -1);
  std::int64_t stamp = 0;
  for (const auto& r : trace.requests()) {
    if (first[r.key] < 0) first[r.key] = stamp++;
  }
  std::int64_t prev = -1;
  for (const std::uint64_t key : p.touch_order) {
    if (first[key] < 0) break;  // untouched tail begins
    EXPECT_GT(first[key], prev);
    prev = first[key];
  }
}

TEST(PatternEngine, UntouchedKeysAppendedInIdOrder) {
  // Hand-built trace touching only keys 5 and 2.
  std::vector<workload::Request> reqs = {
      {5, workload::OpType::kRead}, {2, workload::OpType::kRead},
      {5, workload::OpType::kRead}};
  const workload::Trace trace("manual", 6, std::move(reqs),
                              std::vector<std::uint64_t>(6, 100));
  const AccessPattern p = PatternEngine::analyze(trace);
  const std::vector<std::uint64_t> expected = {5, 2, 0, 1, 3, 4};
  EXPECT_EQ(p.touch_order, expected);
  EXPECT_EQ(p.reads[5], 2u);
  EXPECT_EQ(p.accesses(2), 1u);
  EXPECT_EQ(p.accesses(0), 0u);
}

}  // namespace
}  // namespace mnemo::core
