#include "core/mnemo.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <set>

#include "util/csv.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

workload::Trace small_trace(std::string_view name = "trending") {
  workload::WorkloadSpec spec = workload::paper_workload(name);
  spec.key_count = 500;
  spec.request_count = 5'000;
  return workload::Trace::generate(spec);
}

MnemoConfig quick_config() {
  MnemoConfig cfg;
  cfg.repeats = 1;
  return cfg;
}

TEST(Mnemo, ProfileProducesCompleteReport) {
  const Mnemo mnemo(quick_config());
  const auto trace = small_trace();
  const MnemoReport report = mnemo.profile(trace);
  EXPECT_EQ(report.workload, "trending");
  EXPECT_EQ(report.ordering, OrderingPolicy::kTouchOrder);
  EXPECT_EQ(report.order.size(), trace.key_count());
  EXPECT_EQ(report.curve.points.size(), trace.key_count() + 1);
  ASSERT_TRUE(report.slo_choice.has_value());
  EXPECT_GE(report.slo_choice->cost_factor, 0.2);
  EXPECT_LE(report.slo_choice->cost_factor, 1.0);
}

TEST(Mnemo, CurveEndpointsBracketBaselines) {
  const Mnemo mnemo(quick_config());
  const MnemoReport report = mnemo.profile(small_trace());
  EXPECT_NEAR(report.curve.points.front().est_throughput_ops,
              report.baselines.slow.throughput_ops,
              report.baselines.slow.throughput_ops * 1e-6);
  EXPECT_NEAR(report.curve.points.back().est_throughput_ops,
              report.baselines.fast.throughput_ops,
              report.baselines.fast.throughput_ops * 0.02);
}

TEST(Mnemo, EstimateTracksMeasurementWithinOnePercent) {
  const Mnemo mnemo(quick_config());
  const auto trace = small_trace("timeline");
  const MnemoReport report = mnemo.profile(trace);
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(report.curve.points.size() - 1));
    const EstimatePoint& p = report.curve.points[idx];
    const RunMeasurement measured = mnemo.validate(trace, report.order, p);
    const double err =
        estimate_error_pct(measured.throughput_ops, p.est_throughput_ops);
    EXPECT_LT(std::abs(err), 1.0) << "frac=" << frac;
  }
}

TEST(MnemoT, UsesTieredOrdering) {
  const MnemoT mnemot(quick_config());
  const MnemoReport report = mnemot.profile(small_trace());
  EXPECT_EQ(report.ordering, OrderingPolicy::kTiered);
  std::set<std::uint64_t> unique(report.order.begin(), report.order.end());
  EXPECT_EQ(unique.size(), report.order.size());
}

TEST(MnemoT, TieredOrderingIsAtLeastAsCostEfficient) {
  // MnemoT prioritizes hot keys: at the same SLO its sweet spot can only
  // be cheaper or equal vs first-touch ordering.
  const auto trace = small_trace("timeline");
  const Mnemo standalone(quick_config());
  const MnemoT tiered(quick_config());
  const auto rep_a = standalone.profile(trace);
  const auto rep_t = tiered.profile(trace);
  ASSERT_TRUE(rep_a.slo_choice && rep_t.slo_choice);
  EXPECT_LE(rep_t.slo_choice->cost_factor,
            rep_a.slo_choice->cost_factor + 0.02);
}

TEST(Mnemo, ExternalOrderingScenario) {
  const Mnemo mnemo(quick_config());
  const auto trace = small_trace();
  std::vector<std::uint64_t> reversed(trace.key_count());
  std::iota(reversed.begin(), reversed.end(), 0);
  std::reverse(reversed.begin(), reversed.end());
  const MnemoReport report = mnemo.profile_with_order(trace, reversed);
  EXPECT_EQ(report.ordering, OrderingPolicy::kExternal);
  EXPECT_EQ(report.order, reversed);
}

TEST(Mnemo, CsvArtifactHasPaperColumns) {
  const Mnemo mnemo(quick_config());
  const auto trace = small_trace();
  const MnemoReport report = mnemo.profile(trace);
  const std::string path = ::testing::TempDir() + "/mnemo_report.csv";
  report.write_csv(path);
  const auto rows = util::csv::read_file(path);
  ASSERT_EQ(rows.size(), trace.key_count() + 1);  // header + one per key
  EXPECT_EQ(rows[0][0], "key_id");
  EXPECT_EQ(rows[0][1], "est_throughput_ops");
  EXPECT_EQ(rows[0][2], "cost_reduction_factor");
  // Cost column climbs from near the floor to 1.0.
  EXPECT_LT(std::stod(rows[1][2]), 0.35);
  EXPECT_NEAR(std::stod(rows.back()[2]), 1.0, 1e-6);
  std::filesystem::remove(path);
}

TEST(Mnemo, SloChoiceRespectsTolerance) {
  MnemoConfig cfg = quick_config();
  cfg.slo_slowdown = 0.05;
  const Mnemo strict(cfg);
  cfg.slo_slowdown = 0.30;
  const Mnemo loose(cfg);
  const auto trace = small_trace();
  const auto strict_choice = strict.profile(trace).slo_choice;
  const auto loose_choice = loose.profile(trace).slo_choice;
  ASSERT_TRUE(strict_choice && loose_choice);
  EXPECT_GE(strict_choice->cost_factor, loose_choice->cost_factor);
}

TEST(Mnemo, SizeAwareModelBeatsUniformOnMixedSizesUnderTiering) {
  // MnemoT's accesses/size ordering correlates the FastMem prefix with
  // record size; on the mixed-size preview workload the uniform-delta
  // model systematically over-promises. The size-aware model must be
  // closer to the validated measurement at the mid-curve.
  workload::WorkloadSpec spec = workload::paper_workload("trending_preview");
  spec.key_count = 800;
  spec.request_count = 8'000;
  const workload::Trace trace = workload::Trace::generate(spec);

  MnemoConfig cfg = quick_config();
  cfg.ordering = OrderingPolicy::kTiered;
  cfg.estimate_model = EstimateModel::kUniformDelta;
  const MnemoT uniform(cfg);
  cfg.estimate_model = EstimateModel::kSizeAware;
  const MnemoT aware(cfg);

  const auto rep_u = uniform.profile(trace);
  const auto rep_a = aware.profile(trace);

  double worst_u = 0.0;
  double worst_a = 0.0;
  for (const double frac : {0.1, 0.25, 0.5}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(rep_u.curve.points.size() - 1));
    const auto mu = uniform.validate(trace, rep_u.order,
                                     rep_u.curve.points[idx]);
    const auto ma =
        aware.validate(trace, rep_a.order, rep_a.curve.points[idx]);
    worst_u = std::max(worst_u,
                       std::abs(estimate_error_pct(
                           mu.throughput_ops,
                           rep_u.curve.points[idx].est_throughput_ops)));
    worst_a = std::max(worst_a,
                       std::abs(estimate_error_pct(
                           ma.throughput_ops,
                           rep_a.curve.points[idx].est_throughput_ops)));
  }
  EXPECT_LT(worst_a, worst_u);
}

TEST(Mnemo, OrderingPolicyNames) {
  EXPECT_EQ(to_string(OrderingPolicy::kTouchOrder), "touch_order");
  EXPECT_EQ(to_string(OrderingPolicy::kTiered), "tiered");
  EXPECT_EQ(to_string(OrderingPolicy::kExternal), "external");
}

}  // namespace
}  // namespace mnemo::core
