// Byte-identity goldens for the replay path (labelled `concurrency` +
// `faults`): fig5-style validation sweeps across all three store
// architectures plus a faulted degraded campaign, serialized with exact
// (hexfloat) formatting and pinned to fixture files generated before the
// flat-table refactor of the hot path. Any change to simulated results —
// an RNG stream, an eviction order, an accounting rule — shows up here as
// a fixture mismatch, at every thread count in {1, 2, 8}.
//
// Regenerate (only for an *intentional* semantics change, and say so in
// the commit):  MNEMO_WRITE_GOLDEN=1 ./tests_golden

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/sensitivity_engine.hpp"
#include "workload/workload_spec.hpp"

namespace mnemo::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

workload::Trace golden_trace() {
  workload::WorkloadSpec spec;
  spec.name = "golden_replay";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = 300;
  spec.request_count = 3'000;
  spec.seed = 0x901de;
  return workload::Trace::generate(spec);
}

void serialize(std::ostringstream& out, const RunMeasurement& m) {
  out << "rt=" << hex(m.runtime_ns) << " thr=" << hex(m.throughput_ops)
      << " avg=" << hex(m.avg_latency_ns) << " r=" << hex(m.avg_read_ns)
      << " w=" << hex(m.avg_write_ns) << " p95=" << hex(m.p95_ns)
      << " p99=" << hex(m.p99_ns) << " req=" << m.requests
      << " reads=" << m.reads << " writes=" << m.writes
      << " llc=" << hex(m.llc_hit_rate)
      << " rvb=" << hex(m.read_vs_bytes.intercept) << ","
      << hex(m.read_vs_bytes.slope)
      << " wvb=" << hex(m.write_vs_bytes.intercept) << ","
      << hex(m.write_vs_bytes.slope) << " hist=";
  for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i) {
    if (m.latency_hist.bucket(i) != 0) {
      out << i << ":" << m.latency_hist.bucket(i) << ";";
    }
  }
  out << " faults=" << m.faults.transient_faults << ","
      << m.faults.transient_retries << "," << m.faults.transient_failures
      << "," << m.faults.poison_hits << "," << m.faults.degraded_accesses;
}

/// Fig5-style validation sweep: measured placements at prefix fractions of
/// the identity key order, for every store architecture, repeats averaged
/// by the campaign grid.
std::string sweep_snapshot(const workload::Trace& trace,
                           std::size_t threads) {
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::ostringstream out;
  for (const kvstore::StoreKind store :
       {kvstore::StoreKind::kVermilion, kvstore::StoreKind::kCachet,
        kvstore::StoreKind::kDynaStore}) {
    SensitivityConfig cfg;
    cfg.store = store;
    cfg.repeats = 2;
    const SensitivityEngine engine(cfg);

    std::vector<hybridmem::Placement> placements;
    for (const double f : fractions) {
      placements.push_back(hybridmem::Placement::from_order(
          order, static_cast<std::size_t>(
                     f * static_cast<double>(trace.key_count()))));
    }
    CampaignRunner runner(threads);
    const std::vector<RunMeasurement> grid =
        runner.measure_grid(engine, trace, placements);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      out << kvstore::to_string(store) << " fast_keys="
          << placements[i].fast_keys() << " ";
      serialize(out, grid[i]);
      out << "\n";
    }
  }
  return out.str();
}

/// Degraded campaign: a poison plan that quarantines every all-SlowMem
/// cell while all-FastMem cells stay clean — measurements and the failure
/// ledger both go into the golden.
std::string degraded_snapshot(const workload::Trace& trace,
                              std::size_t threads) {
  faultinject::FaultPlan plan;
  plan.poison_rate = 0.2;
  SensitivityConfig cfg;
  cfg.repeats = 2;
  cfg.faults = plan;
  const SensitivityEngine engine(cfg);

  const hybridmem::Placement all_fast(trace.key_count(),
                                      hybridmem::NodeId::kFast);
  const hybridmem::Placement all_slow(trace.key_count(),
                                      hybridmem::NodeId::kSlow);
  const std::vector<CampaignCell> cells = {
      {all_fast, 0}, {all_slow, 0}, {all_fast, 1}, {all_slow, 1}};

  CampaignRunner runner(threads);
  const CampaignResult result = runner.run_checked(engine, trace, cells);

  std::ostringstream out;
  for (std::size_t i = 0; i < result.measurements.size(); ++i) {
    out << "cell " << i << " ";
    if (result.measurements[i].has_value()) {
      serialize(out, *result.measurements[i]);
    } else {
      out << "quarantined";
    }
    out << "\n";
  }
  for (const CellFailure& f : result.failures) {
    out << "failure cell=" << f.cell << " fast_keys=" << f.fast_keys
        << " repeat=" << f.repeat << " attempts=" << f.attempts
        << " code=" << static_cast<int>(f.error.code)
        << " faults=" << f.faults.transient_faults << ","
        << f.faults.transient_retries << "," << f.faults.transient_failures
        << "," << f.faults.poison_hits << "," << f.faults.degraded_accesses
        << "\n";
  }
  return out.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(MNEMO_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream file(fixture_path(name));
  std::stringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

/// Computes the snapshot at every thread count, requires thread-count
/// invariance, then pins against (or, in write mode, regenerates) the
/// fixture.
void check_golden(const std::string& name,
                  const std::function<std::string(std::size_t)>& snapshot) {
  const std::string serial = snapshot(1);
  ASSERT_FALSE(serial.empty());
  for (const std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    EXPECT_EQ(serial, snapshot(threads))
        << name << ": result depends on thread count " << threads;
  }
  if (std::getenv("MNEMO_WRITE_GOLDEN") != nullptr) {
    std::ofstream file(fixture_path(name));
    file << serial;
    ASSERT_TRUE(file.good()) << "cannot write " << fixture_path(name);
    GTEST_SKIP() << "regenerated " << fixture_path(name);
  }
  const std::string golden = read_fixture(name);
  ASSERT_FALSE(golden.empty())
      << "missing fixture " << fixture_path(name)
      << " — generate with MNEMO_WRITE_GOLDEN=1";
  EXPECT_EQ(golden, serial) << name
                            << ": simulated results diverged from the "
                               "pre-refactor golden";
}

TEST(GoldenReplay, SweepByteIdenticalAcrossThreadCountsAndRefactors) {
  const workload::Trace trace = golden_trace();
  check_golden("golden_sweep.txt", [&](std::size_t threads) {
    return sweep_snapshot(trace, threads);
  });
}

TEST(GoldenReplay, DegradedCampaignByteIdenticalWithLedger) {
  const workload::Trace trace = golden_trace();
  check_golden("golden_degraded.txt", [&](std::size_t threads) {
    return degraded_snapshot(trace, threads);
  });
}

}  // namespace
}  // namespace mnemo::core
