#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace mnemo::core {
namespace {

TEST(CostModel, TableIIEndpoints) {
  const CostModel model(0.2);
  // Best case: all C bytes in FastMem -> no reduction (factor 1.0).
  EXPECT_DOUBLE_EQ(model.reduction(1000, 1000), 1.0);
  // Worst case: 0 bytes in FastMem -> factor p.
  EXPECT_DOUBLE_EQ(model.reduction(0, 1000), 0.2);
  EXPECT_DOUBLE_EQ(model.floor(), 0.2);
  EXPECT_DOUBLE_EQ(CostModel::ceiling(), 1.0);
}

TEST(CostModel, LinearInFastBytes) {
  const CostModel model(0.2);
  // R = (F + (C-F)p)/C: half the data in FastMem with p=0.2 -> 0.6.
  EXPECT_DOUBLE_EQ(model.reduction(500, 1000), 0.6);
  EXPECT_DOUBLE_EQ(model.reduction(250, 1000), 0.4);
  EXPECT_DOUBLE_EQ(model.reduction(750, 1000), 0.8);
}

TEST(CostModel, PriceFactorShiftsTheFloor) {
  const CostModel cheap(0.1);
  const CostModel pricey(0.5);
  EXPECT_DOUBLE_EQ(cheap.reduction(0, 100), 0.1);
  EXPECT_DOUBLE_EQ(pricey.reduction(0, 100), 0.5);
  EXPECT_LT(cheap.reduction(50, 100), pricey.reduction(50, 100));
}

TEST(CostModel, InverseRoundTrips) {
  const CostModel model(0.2);
  for (const std::uint64_t fast : {0ULL, 100ULL, 567ULL, 1000ULL}) {
    const double r = model.reduction(fast, 1000);
    EXPECT_EQ(model.fast_bytes_for(r, 1000), fast);
  }
}

TEST(CostModel, MonotoneNondecreasing) {
  const CostModel model(0.2);
  double prev = 0.0;
  for (std::uint64_t f = 0; f <= 1000; f += 50) {
    const double r = model.reduction(f, 1000);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(CostModel, PaperDefaultFactor) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.price_factor(), 0.2);
  // The paper's trending example: FastMem sized to the hot 20% of a
  // uniform-sized dataset costs 36% of FastMem-only.
  EXPECT_NEAR(model.reduction(200, 1000), 0.36, 1e-12);
}

}  // namespace
}  // namespace mnemo::core
