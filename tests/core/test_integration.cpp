// End-to-end integration: the full paper pipeline on one workload —
// generate -> profile -> estimate -> advise -> place -> validate — with
// every cross-component invariant checked in one place.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mnemo.hpp"
#include "core/placement_engine.hpp"
#include "core/tail_estimator.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "workload/downsample.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {
namespace {

class PipelineTest : public ::testing::TestWithParam<kvstore::StoreKind> {};

TEST_P(PipelineTest, FullPaperPipelineIsCoherent) {
  // 1. Workload descriptor (scaled-down trending).
  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 600;
  spec.request_count = 6'000;
  const workload::Trace trace = workload::Trace::generate(spec);

  // 2. Profile with MnemoT.
  MnemoConfig cfg;
  cfg.store = GetParam();
  cfg.repeats = 2;
  cfg.ordering = OrderingPolicy::kTiered;
  const MnemoT mnemo(cfg);
  const MnemoReport report = mnemo.profile(trace);

  // Invariants on the curve.
  ASSERT_EQ(report.curve.points.size(), trace.key_count() + 1);
  double prev_cost = -1.0;
  for (const EstimatePoint& p : report.curve.points) {
    ASSERT_GE(p.cost_factor, 0.2 - 1e-9);
    ASSERT_LE(p.cost_factor, 1.0 + 1e-9);
    ASSERT_GT(p.cost_factor, prev_cost) << "cost strictly increases";
    prev_cost = p.cost_factor;
    ASSERT_GT(p.est_throughput_ops, 0.0);
  }
  // Tiered read-only ordering: throughput non-decreasing along the curve.
  for (std::size_t i = 1; i < report.curve.points.size(); ++i) {
    ASSERT_GE(report.curve.points[i].est_throughput_ops,
              report.curve.points[i - 1].est_throughput_ops * 0.999);
  }

  // 3. The SLO choice exists and meets its contract on the estimate.
  ASSERT_TRUE(report.slo_choice.has_value());
  const SloChoice& choice = *report.slo_choice;
  EXPECT_LE(choice.slowdown_vs_fast, 0.10 + 1e-9);

  // 4. Validate the advice by executing the placement.
  const RunMeasurement validated =
      mnemo.validate(trace, report.order, choice.point);
  const double real_slowdown =
      1.0 - validated.throughput_ops / report.baselines.fast.throughput_ops;
  EXPECT_LT(real_slowdown, 0.13) << "validated slowdown near the 10% SLO";

  // 5. Tail estimates at the chosen point are in the measured ballpark.
  const TailEstimate tails = TailEstimator::estimate(
      report.pattern, report.order, choice.point.fast_keys,
      report.baselines);
  EXPECT_NEAR(tails.p95_ns / validated.p95_ns, 1.0, 0.4);
  // p99 rides on rare spike events and is noisy at this reduced request
  // count (it lands within ~5% at paper scale — see bench/fig8_accuracy);
  // only require the right ballpark here.
  EXPECT_GT(tails.p99_ns, validated.p99_ns * 0.4);
  EXPECT_LT(tails.p99_ns, validated.p99_ns * 2.5);

  // 6. Placement Engine populates real servers consistently.
  const auto placement =
      PlacementEngine::placement_for(report.order, choice.point);
  hybridmem::HybridMemory memory(hybridmem::paper_testbed_with_capacity(
      trace.dataset_bytes() * 2));
  kvstore::StoreConfig store_cfg;
  kvstore::DualServer servers(memory, cfg.store, store_cfg);
  PlacementEngine::populate(servers, trace, placement);
  EXPECT_EQ(servers.fast().record_count() + servers.slow().record_count(),
            trace.key_count());
  EXPECT_EQ(servers.fast().record_count(), choice.point.fast_keys);
  EXPECT_GE(memory.node(hybridmem::NodeId::kFast).used_bytes(),
            choice.point.fast_bytes);

  // 7. A downsampled descriptor reproduces the advice (paper §V-A).
  const workload::Trace down = workload::downsample(trace, 0.25, 99);
  const MnemoReport down_report = mnemo.profile(down);
  ASSERT_TRUE(down_report.slo_choice.has_value());
  EXPECT_NEAR(down_report.slo_choice->cost_factor, choice.cost_factor, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, PipelineTest,
    ::testing::Values(kvstore::StoreKind::kVermilion,
                      kvstore::StoreKind::kCachet,
                      kvstore::StoreKind::kDynaStore),
    [](const auto& info) {
      return std::string(kvstore::to_string(info.param));
    });

}  // namespace
}  // namespace mnemo::core
