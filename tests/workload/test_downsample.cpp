#include "workload/downsample.hpp"

#include <gtest/gtest.h>

#include "workload/suite.hpp"

namespace mnemo::workload {
namespace {

Trace make_trace() {
  WorkloadSpec spec = paper_workload("timeline");
  spec.key_count = 500;
  spec.request_count = 20'000;
  spec.record_size = RecordSizeType::kPhotoCaption;
  return Trace::generate(spec);
}

TEST(Downsample, ReducesRequestCountProportionally) {
  const Trace full = make_trace();
  const Trace half = downsample(full, 0.5, 1);
  EXPECT_NEAR(static_cast<double>(half.requests().size()),
              0.5 * static_cast<double>(full.requests().size()),
              0.01 * static_cast<double>(full.requests().size()));
}

TEST(Downsample, PreservesKeySpaceAndSizes) {
  const Trace full = make_trace();
  const Trace down = downsample(full, 0.3, 2);
  EXPECT_EQ(down.key_count(), full.key_count());
  EXPECT_EQ(down.key_sizes(), full.key_sizes());
  EXPECT_EQ(down.dataset_bytes(), full.dataset_bytes());
}

TEST(Downsample, KeepEverythingIsIdentity) {
  const Trace full = make_trace();
  const Trace same = downsample(full, 1.0, 3);
  ASSERT_EQ(same.requests().size(), full.requests().size());
  for (std::size_t i = 0; i < full.requests().size(); ++i) {
    ASSERT_EQ(same.requests()[i].key, full.requests()[i].key);
    ASSERT_EQ(same.requests()[i].op, full.requests()[i].op);
  }
}

TEST(Downsample, PreservesKeyDistribution) {
  const Trace full = make_trace();
  for (const double keep : {0.5, 0.2, 0.1}) {
    const Trace down = downsample(full, keep, 7);
    EXPECT_LT(key_distribution_distance(full, down), 0.02)
        << "keep=" << keep
        << ": random-interval eviction must preserve the popularity CDF";
  }
}

TEST(Downsample, PreservesReadWriteRatio) {
  WorkloadSpec spec = paper_workload("edit_thumbnail");
  spec.key_count = 500;
  spec.request_count = 20'000;
  spec.record_size = RecordSizeType::kPhotoCaption;
  const Trace full = Trace::generate(spec);
  const Trace down = downsample(full, 0.25, 4);
  const double full_frac = static_cast<double>(full.total_reads()) /
                           static_cast<double>(full.requests().size());
  const double down_frac = static_cast<double>(down.total_reads()) /
                           static_cast<double>(down.requests().size());
  EXPECT_NEAR(down_frac, full_frac, 0.03);
}

TEST(Downsample, DeterministicPerSeed) {
  const Trace full = make_trace();
  const Trace a = downsample(full, 0.4, 9);
  const Trace b = downsample(full, 0.4, 9);
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (std::size_t i = 0; i < a.requests().size(); ++i) {
    ASSERT_EQ(a.requests()[i].key, b.requests()[i].key);
  }
  const Trace c = downsample(full, 0.4, 10);
  EXPECT_EQ(c.requests().size(), a.requests().size());
}

TEST(Downsample, PreservesRequestOrderWithinTrace) {
  // Kept requests appear in original relative order: verify with a
  // sequential trace whose keys increase monotonically.
  WorkloadSpec spec;
  spec.name = "seq";
  spec.distribution = DistributionKind::kSequential;
  spec.key_count = 10'000;
  spec.request_count = 10'000;
  spec.record_size = RecordSizeType::kPhotoCaption;
  const Trace full = Trace::generate(spec);
  const Trace down = downsample(full, 0.5, 5);
  for (std::size_t i = 1; i < down.requests().size(); ++i) {
    ASSERT_LT(down.requests()[i - 1].key, down.requests()[i].key);
  }
}

TEST(DistributionDistance, ZeroForIdenticalTraces) {
  const Trace full = make_trace();
  EXPECT_DOUBLE_EQ(key_distribution_distance(full, full), 0.0);
}

}  // namespace
}  // namespace mnemo::workload
