// Insert operations and growing keyspaces (YCSB workload-D semantics).

#include <gtest/gtest.h>

#include <filesystem>

#include "core/sensitivity_engine.hpp"
#include "workload/downsample.hpp"
#include "workload/suite.hpp"
#include "workload/trace.hpp"

namespace mnemo::workload {
namespace {

WorkloadSpec insert_spec(double insert_fraction = 0.05) {
  WorkloadSpec spec = ycsb_d();
  spec.key_count = 500;
  spec.request_count = 10'000;
  spec.insert_fraction = insert_fraction;
  return spec;
}

TEST(Inserts, KeySpaceGrowsByInsertCount) {
  const Trace t = Trace::generate(insert_spec());
  EXPECT_EQ(t.initial_key_count(), 500u);
  EXPECT_GT(t.key_count(), t.initial_key_count());
  EXPECT_EQ(t.key_count(), t.initial_key_count() + t.total_inserts());
  // ~5% of 10k requests are inserts.
  EXPECT_NEAR(static_cast<double>(t.total_inserts()), 500.0, 100.0);
  EXPECT_EQ(t.key_sizes().size(), t.key_count());
}

TEST(Inserts, EachNewKeyInsertedExactlyOnceInOrder) {
  const Trace t = Trace::generate(insert_spec());
  std::uint64_t next = t.initial_key_count();
  for (const Request& r : t.requests()) {
    if (r.op == OpType::kInsert) {
      ASSERT_EQ(r.key, next);
      ++next;
    } else {
      ASSERT_LT(r.key, next) << "access to a key before its insert";
    }
  }
  EXPECT_EQ(next, t.key_count());
}

TEST(Inserts, ZeroFractionKeepsFixedKeyspace) {
  const Trace t = Trace::generate(insert_spec(0.0));
  EXPECT_EQ(t.key_count(), 500u);
  EXPECT_EQ(t.total_inserts(), 0u);
}

TEST(Inserts, LatestReadsChaseTheInsertFrontier) {
  const Trace t = Trace::generate(insert_spec());
  // In the second half of the run, reads should concentrate on keys
  // beyond the initial keyspace (the freshly inserted ones).
  std::uint64_t late_reads = 0;
  std::uint64_t late_reads_on_new = 0;
  for (std::size_t i = t.requests().size() / 2; i < t.requests().size();
       ++i) {
    const Request& r = t.requests()[i];
    if (r.op != OpType::kRead) continue;
    ++late_reads;
    if (r.key >= t.initial_key_count() / 2) ++late_reads_on_new;
  }
  ASSERT_GT(late_reads, 0u);
  EXPECT_GT(static_cast<double>(late_reads_on_new) /
                static_cast<double>(late_reads),
            0.8);
}

TEST(Inserts, WriteCountsIncludeInserts) {
  const Trace t = Trace::generate(insert_spec());
  const auto writes = t.write_counts();
  for (std::uint64_t k = t.initial_key_count(); k < t.key_count(); ++k) {
    ASSERT_GE(writes[k], 1u) << "insert of key " << k << " not counted";
  }
  EXPECT_EQ(t.total_reads() + t.total_writes(), t.requests().size());
}

TEST(Inserts, CsvRoundTripPreservesInitialKeys) {
  const Trace t = Trace::generate(insert_spec());
  const std::string path = ::testing::TempDir() + "/insert_trace.csv";
  t.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  EXPECT_EQ(loaded.initial_key_count(), t.initial_key_count());
  EXPECT_EQ(loaded.key_count(), t.key_count());
  ASSERT_EQ(loaded.requests().size(), t.requests().size());
  for (std::size_t i = 0; i < t.requests().size(); i += 37) {
    ASSERT_EQ(loaded.requests()[i].op, t.requests()[i].op);
  }
  std::filesystem::remove(path);
}

TEST(Inserts, DownsamplePreservesEveryInsert) {
  const Trace t = Trace::generate(insert_spec());
  const Trace down = downsample(t, 0.2, 11);
  std::uint64_t inserts = 0;
  for (const Request& r : down.requests()) {
    if (r.op == OpType::kInsert) ++inserts;
  }
  EXPECT_EQ(inserts, t.total_inserts())
      << "inserts define the keyspace and must survive sampling";
  EXPECT_EQ(down.initial_key_count(), t.initial_key_count());
  // The constructor itself validates insert ordering; reaching here means
  // the downsampled trace is well-formed.
}

TEST(Inserts, EndToEndProfileRunsCleanly) {
  const Trace t = Trace::generate(insert_spec());
  core::SensitivityConfig cfg;
  cfg.repeats = 1;
  const core::SensitivityEngine engine(cfg);
  const auto baselines = engine.baselines(t);
  EXPECT_GT(baselines.fast.throughput_ops, baselines.slow.throughput_ops);
  EXPECT_EQ(baselines.fast.requests, t.requests().size());
  EXPECT_GT(baselines.fast.writes, 0u) << "inserts measured as writes";
}

TEST(Inserts, YcsbDSpecShape) {
  const WorkloadSpec spec = ycsb_d();
  EXPECT_EQ(spec.distribution, DistributionKind::kLatest);
  EXPECT_DOUBLE_EQ(spec.insert_fraction, 0.05);
  EXPECT_DOUBLE_EQ(spec.read_fraction, 1.0);
  spec.check();
}

}  // namespace
}  // namespace mnemo::workload
