#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/status.hpp"
#include "workload/suite.hpp"

namespace mnemo::workload {
namespace {

WorkloadSpec small_spec(double read_fraction = 0.7) {
  WorkloadSpec s;
  s.name = "test";
  s.distribution = DistributionKind::kZipfian;
  s.read_fraction = read_fraction;
  s.record_size = RecordSizeType::kPhotoCaption;
  s.key_count = 100;
  s.request_count = 10'000;
  s.seed = 11;
  return s;
}

TEST(Trace, GenerateHonorsScale) {
  const Trace t = Trace::generate(small_spec());
  EXPECT_EQ(t.key_count(), 100u);
  EXPECT_EQ(t.requests().size(), 10'000u);
  EXPECT_EQ(t.key_sizes().size(), 100u);
  EXPECT_GT(t.dataset_bytes(), 0u);
}

TEST(Trace, ReadFractionApproximatelyHonored) {
  const Trace t = Trace::generate(small_spec(0.7));
  const double frac = static_cast<double>(t.total_reads()) /
                      static_cast<double>(t.requests().size());
  EXPECT_NEAR(frac, 0.7, 0.02);
  EXPECT_EQ(t.total_reads() + t.total_writes(), t.requests().size());
}

TEST(Trace, ReadonlySpecHasNoWrites) {
  const Trace t = Trace::generate(small_spec(1.0));
  EXPECT_EQ(t.total_writes(), 0u);
}

TEST(Trace, CountsDecomposeByOpType) {
  const Trace t = Trace::generate(small_spec(0.5));
  const auto all = t.access_counts();
  const auto reads = t.read_counts();
  const auto writes = t.write_counts();
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < t.key_count(); ++k) {
    EXPECT_EQ(all[k], reads[k] + writes[k]);
    total += all[k];
  }
  EXPECT_EQ(total, t.requests().size());
}

TEST(Trace, DeterministicForSameSeed) {
  const Trace a = Trace::generate(small_spec());
  const Trace b = Trace::generate(small_spec());
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (std::size_t i = 0; i < a.requests().size(); ++i) {
    ASSERT_EQ(a.requests()[i].key, b.requests()[i].key);
    ASSERT_EQ(a.requests()[i].op, b.requests()[i].op);
  }
  EXPECT_EQ(a.key_sizes(), b.key_sizes());
}

TEST(Trace, DifferentSeedsDiffer) {
  WorkloadSpec other = small_spec();
  other.seed = 12;
  const Trace a = Trace::generate(small_spec());
  const Trace b = Trace::generate(other);
  int same = 0;
  for (std::size_t i = 0; i < a.requests().size(); ++i) {
    if (a.requests()[i].key == b.requests()[i].key) ++same;
  }
  EXPECT_LT(same, static_cast<int>(a.requests().size()));
}

TEST(Trace, HotShareReflectsSkew) {
  const Trace zipf = Trace::generate(small_spec());
  WorkloadSpec uniform_spec = small_spec();
  uniform_spec.distribution = DistributionKind::kUniform;
  const Trace uniform = Trace::generate(uniform_spec);
  EXPECT_GT(zipf.hot_share(0.1), uniform.hot_share(0.1));
  EXPECT_NEAR(uniform.hot_share(1.0), 1.0, 1e-12);
}

TEST(Trace, SizeOfMatchesKeySizes) {
  const Trace t = Trace::generate(small_spec());
  for (std::uint64_t k = 0; k < t.key_count(); ++k) {
    EXPECT_EQ(t.size_of(k), t.key_sizes()[k]);
  }
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = Trace::generate(small_spec());
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  t.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  EXPECT_EQ(loaded.name(), t.name());
  EXPECT_EQ(loaded.key_count(), t.key_count());
  EXPECT_EQ(loaded.key_sizes(), t.key_sizes());
  ASSERT_EQ(loaded.requests().size(), t.requests().size());
  for (std::size_t i = 0; i < t.requests().size(); ++i) {
    ASSERT_EQ(loaded.requests()[i].key, t.requests()[i].key);
    ASSERT_EQ(loaded.requests()[i].op, t.requests()[i].op);
  }
  std::filesystem::remove(path);
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.csv";
  {
    std::ofstream out(path);
    out << "not,a,trace\n1,2\n3,4\n";
  }
  EXPECT_THROW(Trace::load_csv(path), util::ParseError);
  std::filesystem::remove(path);
}

TEST(Trace, LoadErrorsNameFileAndLine) {
  const std::string path = ::testing::TempDir() + "/badrow.csv";
  {
    std::ofstream out(path);
    // Valid header + sizes for 2 keys, then a request row with a bad op.
    out << "trace,t\nkey_count,2\nsizes,10,10\n0,read\n1,destroy\n";
  }
  try {
    Trace::load_csv(path);
    FAIL() << "expected util::ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 5u);
    EXPECT_NE(std::string(e.what()).find(path + ":5:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("destroy"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(OpType, Names) {
  EXPECT_EQ(to_string(OpType::kRead), "read");
  EXPECT_EQ(to_string(OpType::kUpdate), "update");
}

}  // namespace
}  // namespace mnemo::workload
