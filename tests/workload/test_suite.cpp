#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include "workload/trace.hpp"

namespace mnemo::workload {
namespace {

TEST(PaperSuite, HasTheFiveTableIIIWorkloads) {
  const auto suite = paper_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "trending");
  EXPECT_EQ(suite[1].name, "news_feed");
  EXPECT_EQ(suite[2].name, "timeline");
  EXPECT_EQ(suite[3].name, "edit_thumbnail");
  EXPECT_EQ(suite[4].name, "trending_preview");
}

class SuiteWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteWorkloads, TableIIIScaleAndValidity) {
  const WorkloadSpec spec = paper_workload(GetParam());
  spec.check();
  EXPECT_EQ(spec.key_count, 10'000u);      // Table III: 10,000 keys
  EXPECT_EQ(spec.request_count, 100'000u);  // Table III: 100,000 requests
  EXPECT_FALSE(spec.use_case.empty());
}

INSTANTIATE_TEST_SUITE_P(TableIII, SuiteWorkloads,
                         ::testing::Values("trending", "news_feed",
                                           "timeline", "edit_thumbnail",
                                           "trending_preview"));

TEST(PaperSuite, DistributionsMatchTableIII) {
  EXPECT_EQ(paper_workload("trending").distribution,
            DistributionKind::kHotspot);
  EXPECT_EQ(paper_workload("news_feed").distribution,
            DistributionKind::kLatest);
  EXPECT_EQ(paper_workload("timeline").distribution,
            DistributionKind::kScrambledZipfian);
  EXPECT_EQ(paper_workload("edit_thumbnail").distribution,
            DistributionKind::kScrambledZipfian);
  EXPECT_EQ(paper_workload("trending_preview").distribution,
            DistributionKind::kHotspot);
}

TEST(PaperSuite, RatiosMatchTableIII) {
  EXPECT_DOUBLE_EQ(paper_workload("trending").read_fraction, 1.0);
  EXPECT_DOUBLE_EQ(paper_workload("edit_thumbnail").read_fraction, 0.5);
  EXPECT_EQ(paper_workload("trending").ratio_label(), "100:0 readonly");
  EXPECT_EQ(paper_workload("edit_thumbnail").ratio_label(),
            "50:50 updateheavy");
}

TEST(PaperSuite, RecordSizesMatchTableIII) {
  EXPECT_EQ(paper_workload("trending").record_size,
            RecordSizeType::kThumbnail);
  EXPECT_EQ(paper_workload("trending_preview").record_size,
            RecordSizeType::kPreviewMix);
}

TEST(RecordSizeSweep, ThreeVariantsOfTimeline) {
  const auto sweep = record_size_sweep();
  ASSERT_EQ(sweep.size(), 3u);
  for (const auto& spec : sweep) {
    EXPECT_EQ(spec.distribution, DistributionKind::kScrambledZipfian);
  }
  EXPECT_EQ(sweep[0].record_size, RecordSizeType::kThumbnail);
  EXPECT_EQ(sweep[2].record_size, RecordSizeType::kPhotoCaption);
}

TEST(Sweeps, DistributionAndRatioSetsAreDrawnFromSuite) {
  EXPECT_EQ(distribution_sweep().size(), 3u);
  const auto ratio = ratio_sweep();
  ASSERT_EQ(ratio.size(), 2u);
  EXPECT_DOUBLE_EQ(ratio[0].read_fraction, 1.0);
  EXPECT_DOUBLE_EQ(ratio[1].read_fraction, 0.5);
}

TEST(PaperSuite, GeneratedTracesDifferInSkew) {
  // Trending (hotspot) concentrates more mass on its hot 20% than
  // timeline (scrambled zipfian) does on its hottest 20%.
  const Trace trending = Trace::generate(paper_workload("trending"));
  EXPECT_NEAR(trending.hot_share(0.2), 0.8, 0.05);
}

}  // namespace
}  // namespace mnemo::workload
