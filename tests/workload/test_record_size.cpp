#include "workload/record_size.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stats/summary.hpp"
#include "util/bytes.hpp"

namespace mnemo::workload {
namespace {

using util::kKiB;

TEST(FixedSize, AlwaysSame) {
  FixedSizeModel model(4096);
  EXPECT_EQ(model.size_of(0), 4096u);
  EXPECT_EQ(model.size_of(12345), 4096u);
}

TEST(Lognormal, DeterministicPerKey) {
  LognormalSizeModel model(10 * kKiB, 0.3, kKiB, 100 * kKiB, 42);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(model.size_of(k), model.size_of(k));
  }
  LognormalSizeModel same(10 * kKiB, 0.3, kKiB, 100 * kKiB, 42);
  EXPECT_EQ(model.size_of(7), same.size_of(7));
  LognormalSizeModel other_seed(10 * kKiB, 0.3, kKiB, 100 * kKiB, 43);
  int diff = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (model.size_of(k) != other_seed.size_of(k)) ++diff;
  }
  EXPECT_GT(diff, 90);
}

TEST(Lognormal, RespectsClampsAndMedian) {
  LognormalSizeModel model(10 * kKiB, 0.5, 5 * kKiB, 20 * kKiB, 1);
  std::vector<double> sizes;
  for (std::uint64_t k = 0; k < 20'000; ++k) {
    const std::uint64_t s = model.size_of(k);
    ASSERT_GE(s, 5 * kKiB);
    ASSERT_LE(s, 20 * kKiB);
    sizes.push_back(static_cast<double>(s));
  }
  EXPECT_NEAR(stats::median(sizes), 10.0 * kKiB, 0.5 * kKiB);
}

TEST(Lognormal, ZeroSigmaIsConstant) {
  LognormalSizeModel model(8 * kKiB, 0.0, kKiB, 100 * kKiB, 9);
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(model.size_of(k), 8 * kKiB);
  }
}

TEST(Mixture, NormalizesWeightsAndAssignsDeterministically) {
  std::vector<MixtureSizeModel::Component> parts;
  parts.push_back({3.0, std::make_shared<FixedSizeModel>(100)});
  parts.push_back({1.0, std::make_shared<FixedSizeModel>(1000)});
  MixtureSizeModel model("blend", std::move(parts), 5);
  std::uint64_t small = 0;
  constexpr std::uint64_t kN = 40'000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t s = model.size_of(k);
    ASSERT_TRUE(s == 100 || s == 1000);
    if (s == 100) ++small;
    EXPECT_EQ(model.size_of(k), s) << "assignment is stable per key";
  }
  EXPECT_NEAR(static_cast<double>(small) / kN, 0.75, 0.02);
}

class PaperSizeTypes : public ::testing::TestWithParam<RecordSizeType> {};

TEST_P(PaperSizeTypes, MedianNearNominal) {
  const auto model = make_size_model(GetParam(), 17);
  std::vector<double> sizes;
  for (std::uint64_t k = 0; k < 20'000; ++k) {
    sizes.push_back(static_cast<double>(model->size_of(k)));
  }
  const double nominal = static_cast<double>(nominal_bytes(GetParam()));
  // The preview mix has a multimodal distribution; its *mean* is near the
  // blend nominal, the unimodal types match on the median.
  if (GetParam() == RecordSizeType::kPreviewMix) {
    EXPECT_NEAR(stats::mean(sizes), nominal, nominal * 0.25);
  } else {
    EXPECT_NEAR(stats::median(sizes), nominal, nominal * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, PaperSizeTypes,
    ::testing::Values(RecordSizeType::kThumbnail, RecordSizeType::kTextPost,
                      RecordSizeType::kPhotoCaption,
                      RecordSizeType::kPreviewMix),
    [](const auto& info) { return std::string(to_string(info.param)); });

TEST(PreviewMix, ContainsAllThreeComponentScales) {
  const auto model = make_size_model(RecordSizeType::kPreviewMix, 3);
  bool saw_caption = false;
  bool saw_post = false;
  bool saw_thumbnail = false;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    const std::uint64_t s = model->size_of(k);
    if (s < 3 * kKiB) saw_caption = true;
    else if (s < 30 * kKiB) saw_post = true;
    else saw_thumbnail = true;
  }
  EXPECT_TRUE(saw_caption);
  EXPECT_TRUE(saw_post);
  EXPECT_TRUE(saw_thumbnail);
}

TEST(SocialMediaTable, CoversPlatformsAndSizeRange) {
  const auto& table = social_media_size_table();
  EXPECT_GE(table.size(), 15u);
  std::set<std::string> platforms;
  std::uint64_t min_size = ~0ULL;
  std::uint64_t max_size = 0;
  for (const auto& e : table) {
    platforms.insert(e.platform);
    min_size = std::min(min_size, e.typical_bytes);
    max_size = std::max(max_size, e.typical_bytes);
    EXPECT_GT(e.typical_bytes, 0u);
  }
  EXPECT_GE(platforms.size(), 5u);
  // Fig 4 spans ~3 orders of magnitude (captions to photos).
  EXPECT_LT(min_size, 1 * kKiB);
  EXPECT_GT(max_size, 50 * kKiB);
}

}  // namespace
}  // namespace mnemo::workload
