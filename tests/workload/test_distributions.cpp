#include "workload/key_distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mnemo::workload {
namespace {

constexpr std::uint64_t kKeys = 1000;
constexpr int kDraws = 100'000;

std::vector<std::uint64_t> histogram_of(KeyDistribution& dist,
                                        std::uint64_t seed = 7) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> counts(dist.key_count(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[dist.next(rng)];
  return counts;
}

// ------------------------- properties common to all kinds (TEST_P) ------

class AnyDistribution : public ::testing::TestWithParam<DistributionKind> {};

TEST_P(AnyDistribution, DrawsStayInRange) {
  auto dist = make_distribution(GetParam(), kKeys);
  util::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(dist->next(rng), kKeys);
  }
}

TEST_P(AnyDistribution, SameSeedIsDeterministic) {
  auto d1 = make_distribution(GetParam(), kKeys);
  auto d2 = make_distribution(GetParam(), kKeys);
  util::Rng r1(99);
  util::Rng r2(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(d1->next(r1), d2->next(r2));
  }
}

TEST_P(AnyDistribution, CloneContinuesIdentically) {
  auto dist = make_distribution(GetParam(), kKeys);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) dist->next(rng);
  auto copy = dist->clone();
  util::Rng ra(6);
  util::Rng rb(6);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(dist->next(ra), copy->next(rb));
  }
}

TEST_P(AnyDistribution, ReportsKeyCountAndName) {
  auto dist = make_distribution(GetParam(), kKeys);
  EXPECT_EQ(dist->key_count(), kKeys);
  EXPECT_EQ(dist->name(), to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AnyDistribution,
    ::testing::Values(DistributionKind::kUniform, DistributionKind::kZipfian,
                      DistributionKind::kScrambledZipfian,
                      DistributionKind::kLatest, DistributionKind::kHotspot,
                      DistributionKind::kSequential),
    [](const auto& info) { return std::string(to_string(info.param)); });

// ------------------------------------------------ kind-specific behaviour

TEST(Uniform, RoughlyFlatHistogram) {
  UniformDistribution dist(100);
  const auto counts = histogram_of(dist);
  const double expected = static_cast<double>(kDraws) / 100.0;
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.25);
  }
}

TEST(Zipfian, RankZeroIsHottestAndMonotoneInRank) {
  ZipfianDistribution dist(kKeys, 0.99);
  const auto counts = histogram_of(dist);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[200]);
  // Head share: with theta=0.99 the top 1% of ranks should hold well over
  // 20% of the mass.
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.2);
}

TEST(Zipfian, ThetaControlsSkew) {
  ZipfianDistribution mild(kKeys, 0.5);
  ZipfianDistribution steep(kKeys, 0.99);
  const auto mild_counts = histogram_of(mild);
  const auto steep_counts = histogram_of(steep);
  EXPECT_GT(steep_counts[0], mild_counts[0]);
}

TEST(ScrambledZipfian, SamePopularityMassScatteredAcrossKeys) {
  ZipfianDistribution plain(kKeys, 0.99);
  ScrambledZipfianDistribution scrambled(kKeys, 0.99);
  auto plain_counts = histogram_of(plain);
  auto scrambled_counts = histogram_of(scrambled);
  // Scrambling must not concentrate mass at the low-ID head.
  std::uint64_t plain_head = 0;
  std::uint64_t scrambled_head = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    plain_head += plain_counts[i];
    scrambled_head += scrambled_counts[i];
  }
  EXPECT_GT(plain_head, scrambled_head * 3);
  // But the sorted popularity profile is comparable: a heavy top key
  // exists somewhere in the space.
  std::sort(scrambled_counts.rbegin(), scrambled_counts.rend());
  EXPECT_GT(static_cast<double>(scrambled_counts[0]) / kDraws, 0.02);
}

TEST(Latest, MassConcentratesOnHighestIds) {
  LatestDistribution dist(kKeys, 0.99);
  const auto counts = histogram_of(dist);
  EXPECT_GT(counts[kKeys - 1], counts[kKeys - 100]);
  std::uint64_t newest_decile = 0;
  for (std::size_t i = kKeys - 100; i < kKeys; ++i) newest_decile += counts[i];
  EXPECT_GT(static_cast<double>(newest_decile) / kDraws, 0.5);
}

TEST(Hotspot, OpAndKeyFractionsAreHonored) {
  HotspotDistribution dist(kKeys, 0.2, 0.8);
  const auto counts = histogram_of(dist);
  std::uint64_t hot = 0;
  for (std::size_t i = 0; i < 200; ++i) hot += counts[i];
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.8, 0.01);
  // Within the hot set accesses are uniform.
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[199]),
              static_cast<double>(counts[0]) * 0.3);
}

TEST(Hotspot, AccessorsExposeParameters) {
  HotspotDistribution dist(kKeys, 0.25, 0.9);
  EXPECT_DOUBLE_EQ(dist.hot_key_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(dist.hot_op_fraction(), 0.9);
}

TEST(Latest, DriftSweepsThePivotAcrossTheKeySpace) {
  // With drift that traverses the whole key space over the draws, total
  // popularity flattens out — no static hot set survives.
  const double drift = static_cast<double>(kKeys) / kDraws;
  LatestDistribution drifting(kKeys, 0.99, drift);
  const auto counts = histogram_of(drifting);
  std::uint64_t newest_decile = 0;
  for (std::size_t i = kKeys - 100; i < kKeys; ++i) newest_decile += counts[i];
  EXPECT_LT(static_cast<double>(newest_decile) / kDraws, 0.3)
      << "drift must erase the static high-ID concentration";
  EXPECT_DOUBLE_EQ(drifting.drift(), drift);
}

TEST(Latest, ZeroDriftMatchesClassicBehaviour) {
  LatestDistribution a(kKeys, 0.99);
  LatestDistribution b(kKeys, 0.99, 0.0);
  util::Rng r1(4);
  util::Rng r2(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(r1), b.next(r2));
  }
}

TEST(Sequential, CyclesThroughKeySpace) {
  SequentialDistribution dist(5);
  util::Rng rng(0);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t k = 0; k < 5; ++k) {
      ASSERT_EQ(dist.next(rng), k);
    }
  }
}

TEST(Sequential, CloneResumesPosition) {
  SequentialDistribution dist(10);
  util::Rng rng(0);
  dist.next(rng);
  dist.next(rng);
  auto copy = dist.clone();
  EXPECT_EQ(copy->next(rng), 2u);
}

}  // namespace
}  // namespace mnemo::workload
