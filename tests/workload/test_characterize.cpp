#include "workload/characterize.hpp"

#include <gtest/gtest.h>

#include "core/sensitivity_engine.hpp"
#include "util/bytes.hpp"
#include "workload/suite.hpp"

namespace mnemo::workload {
namespace {

Trace manual_trace(std::vector<Request> reqs, std::uint64_t keys,
                   std::uint64_t size_each = 100) {
  return Trace("manual", keys, std::move(reqs),
               std::vector<std::uint64_t>(keys, size_each));
}

TEST(Characterize, BasicCountsAndRatios) {
  const Trace t = manual_trace({{0, OpType::kRead},
                                {1, OpType::kUpdate},
                                {0, OpType::kRead},
                                {1, OpType::kRead}},
                               2);
  const Characterization c = characterize(t);
  EXPECT_EQ(c.keys, 2u);
  EXPECT_EQ(c.requests, 4u);
  EXPECT_DOUBLE_EQ(c.read_fraction, 0.75);
  EXPECT_DOUBLE_EQ(c.insert_fraction, 0.0);
  EXPECT_EQ(c.cold_accesses, 2u);
  EXPECT_EQ(c.reuse_distances_bytes.size(), 2u);
}

TEST(Characterize, StackDistancesByHand) {
  // Keys sized 100 each. Sequence: A B A  -> A's reuse = B + A = 200.
  //                               A B B  -> B's reuse = B itself = 100.
  const Trace t = manual_trace({{0, OpType::kRead},
                                {1, OpType::kRead},
                                {0, OpType::kRead},
                                {1, OpType::kRead},
                                {1, OpType::kRead}},
                               2);
  const Characterization c = characterize(t);
  ASSERT_EQ(c.reuse_distances_bytes.size(), 3u);
  EXPECT_DOUBLE_EQ(c.reuse_distances_bytes[0], 200.0);  // A after B
  EXPECT_DOUBLE_EQ(c.reuse_distances_bytes[1], 200.0);  // B after A's reuse
  EXPECT_DOUBLE_EQ(c.reuse_distances_bytes[2], 100.0);  // B immediately
}

TEST(Characterize, StackDistanceUsesDistinctBytesNotRequestCount) {
  // A B B B A: A's reuse counts B once (distinct), = B + A = 200.
  const Trace t = manual_trace({{0, OpType::kRead},
                                {1, OpType::kRead},
                                {1, OpType::kRead},
                                {1, OpType::kRead},
                                {0, OpType::kRead}},
                               2);
  const Characterization c = characterize(t);
  EXPECT_DOUBLE_EQ(c.reuse_distances_bytes.back(), 200.0);
}

TEST(Characterize, PredictedHitRateStepFunction) {
  // A B A B ... : every re-access has distance 200.
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) {
    reqs.push_back({static_cast<std::uint32_t>(i % 2), OpType::kRead});
  }
  const Trace t = manual_trace(std::move(reqs), 2);
  const Characterization c = characterize(t);
  EXPECT_DOUBLE_EQ(c.predicted_hit_rate(199, 0), 0.0);
  EXPECT_NEAR(c.predicted_hit_rate(200, 0), 0.98, 1e-9);  // all but 2 cold
  // Bypass cap below the record size kills all hits.
  EXPECT_DOUBLE_EQ(c.predicted_hit_rate(200, 99), 0.0);
}

TEST(Characterize, SkewMetricsOrderWorkloads) {
  WorkloadSpec uniform = paper_workload("timeline");
  uniform.distribution = DistributionKind::kUniform;
  uniform.key_count = 1'000;
  uniform.request_count = 20'000;
  WorkloadSpec skewed = paper_workload("timeline");
  skewed.key_count = 1'000;
  skewed.request_count = 20'000;

  const Characterization cu = characterize(Trace::generate(uniform));
  const Characterization cs = characterize(Trace::generate(skewed));
  EXPECT_GT(cs.hot10_share, cu.hot10_share);
  EXPECT_GT(cs.hot20_share, cu.hot20_share);
  EXPECT_GT(cs.gini, cu.gini);
  EXPECT_LT(cu.gini, 0.3) << "uniform traffic is near-equal";
  EXPECT_GT(cs.gini, 0.5) << "zipfian traffic is concentrated";
  // Skewed workloads re-reference sooner: smaller median stack distance.
  EXPECT_LT(cs.reuse_p50_bytes, cu.reuse_p50_bytes);
}

TEST(Characterize, PredictsTheEmulatorsLlcHitRate) {
  // The emulator's LLC is an object-granular byte-LRU — exactly what the
  // stack-distance model describes, so prediction should match the
  // measured hit rate closely on a cache-friendly workload.
  WorkloadSpec spec = paper_workload("timeline");
  spec.record_size = RecordSizeType::kPhotoCaption;  // cacheable records
  spec.key_count = 2'000;
  spec.request_count = 20'000;
  const Trace trace = Trace::generate(spec);
  const Characterization c = characterize(trace);

  core::SensitivityConfig cfg;
  cfg.repeats = 1;
  const core::SensitivityEngine engine(cfg);
  const auto measured = engine.run_once(
      trace, hybridmem::Placement(trace.key_count(),
                                  hybridmem::NodeId::kFast));

  const auto& platform = cfg.platform;
  const auto bypass = static_cast<std::uint64_t>(
      platform.llc_bypass_fraction *
      static_cast<double>(platform.llc_bytes));
  const double predicted =
      c.predicted_hit_rate(platform.llc_bytes, bypass);
  EXPECT_NEAR(predicted, measured.llc_hit_rate, 0.05)
      << "byte-LRU stack distances model the emulator LLC";
  EXPECT_GT(measured.llc_hit_rate, 0.3) << "workload must exercise the LLC";
}

TEST(Characterize, InsertsCountAsColdAccesses) {
  WorkloadSpec spec = ycsb_d();
  spec.key_count = 300;
  spec.request_count = 5'000;
  const Trace t = Trace::generate(spec);
  const Characterization c = characterize(t);
  EXPECT_GT(c.insert_fraction, 0.02);
  EXPECT_GE(c.cold_accesses, t.total_inserts());
}

}  // namespace
}  // namespace mnemo::workload
