#include "workload/spec_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "workload/suite.hpp"
#include "workload/trace.hpp"

namespace mnemo::workload {
namespace {

TEST(SpecFile, ParsesFullSpec) {
  std::istringstream in(R"(
# a custom feed workload
name = my_feed
distribution = latest
zipf_theta = 0.9
latest_drift = 0.1
read_fraction = 0.95
record_size = text_post
keys = 5000
requests = 50000
seed = 42
)");
  const WorkloadSpec spec = parse_spec(in);
  EXPECT_EQ(spec.name, "my_feed");
  EXPECT_EQ(spec.distribution, DistributionKind::kLatest);
  EXPECT_DOUBLE_EQ(spec.dist_params.zipf_theta, 0.9);
  EXPECT_DOUBLE_EQ(spec.dist_params.latest_drift, 0.1);
  EXPECT_DOUBLE_EQ(spec.read_fraction, 0.95);
  EXPECT_EQ(spec.record_size, RecordSizeType::kTextPost);
  EXPECT_EQ(spec.key_count, 5000u);
  EXPECT_EQ(spec.request_count, 50000u);
  EXPECT_EQ(spec.seed, 42u);
}

TEST(SpecFile, DefaultsForOmittedKeys) {
  std::istringstream in("distribution = hotspot\n");
  const WorkloadSpec spec = parse_spec(in);
  EXPECT_EQ(spec.name, "custom");
  EXPECT_EQ(spec.key_count, 10'000u);
  EXPECT_DOUBLE_EQ(spec.read_fraction, 1.0);
}

TEST(SpecFile, CommentsAndWhitespaceTolerated) {
  std::istringstream in(
      "  keys =  77   # inline comment\n\n# full-line comment\n");
  EXPECT_EQ(parse_spec(in).key_count, 77u);
}

TEST(SpecFile, RejectsUnknownKey) {
  std::istringstream in("bogus = 1\n");
  EXPECT_THROW(parse_spec(in), std::invalid_argument);
}

TEST(SpecFile, RejectsMalformedLineAndValues) {
  std::istringstream in1("just some words\n");
  EXPECT_THROW(parse_spec(in1), std::invalid_argument);
  std::istringstream in2("keys = twelve\n");
  EXPECT_THROW(parse_spec(in2), std::invalid_argument);
  std::istringstream in3("read_fraction = 0.5x\n");
  EXPECT_THROW(parse_spec(in3), std::invalid_argument);
  std::istringstream in4("distribution = gaussian\n");
  EXPECT_THROW(parse_spec(in4), std::invalid_argument);
  std::istringstream in5("record_size = video\n");
  EXPECT_THROW(parse_spec(in5), std::invalid_argument);
}

TEST(SpecFile, FormatRoundTripsEverySuiteWorkload) {
  for (const WorkloadSpec& spec : paper_suite()) {
    std::istringstream in(format_spec(spec));
    const WorkloadSpec parsed = parse_spec(in);
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.distribution, spec.distribution);
    EXPECT_DOUBLE_EQ(parsed.read_fraction, spec.read_fraction);
    EXPECT_EQ(parsed.record_size, spec.record_size);
    EXPECT_EQ(parsed.key_count, spec.key_count);
    EXPECT_EQ(parsed.request_count, spec.request_count);
    EXPECT_EQ(parsed.seed, spec.seed);
    EXPECT_DOUBLE_EQ(parsed.dist_params.latest_drift,
                     spec.dist_params.latest_drift);
    // Round-tripped specs generate identical traces.
    const Trace a = Trace::generate(spec);
    const Trace b = Trace::generate(parsed);
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); i += 997) {
      ASSERT_EQ(a.requests()[i].key, b.requests()[i].key);
    }
  }
}

TEST(SpecFile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spec_roundtrip.conf";
  const WorkloadSpec original = paper_workload("trending");
  save_spec_file(original, path);
  const WorkloadSpec loaded = load_spec_file(path);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.distribution, original.distribution);
  std::filesystem::remove(path);
}

TEST(SpecFile, MissingFileThrows) {
  EXPECT_THROW(load_spec_file("/nonexistent/spec.conf"), std::runtime_error);
}

}  // namespace
}  // namespace mnemo::workload
